#include "data/loader.h"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace tar {

namespace {

/// Parses "YYYY-MM-DDTHH:MM:SSZ" to seconds since the Unix epoch;
/// returns false on malformed input.
bool ParseIso8601(const std::string& s, std::int64_t* out) {
  int year, month, day, hour, minute, second;
  if (std::sscanf(s.c_str(), "%d-%d-%dT%d:%d:%d", &year, &month, &day, &hour,
                  &minute, &second) != 6) {
    return false;
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour > 23 ||
      minute > 59 || second > 60) {
    return false;
  }
  // Days since epoch by the civil-from-days algorithm (avoids timegm).
  std::int64_t y = year;
  std::int64_t m = month;
  y -= m <= 2;
  std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  std::int64_t yoe = y - era * 400;
  std::int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + day - 1;
  std::int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  std::int64_t days = era * 146097 + doe - 719468;
  *out = days * 86400 + hour * 3600 + minute * 60 + second;
  return true;
}

}  // namespace

Result<Dataset> LoadSnapCheckins(std::istream& in,
                                 const LoaderOptions& options) {
  Dataset data;
  data.name = "snap";
  std::unordered_map<std::string, PoiId> location_ids;
  std::string line;
  std::size_t parsed = 0;
  std::size_t seen = 0;
  std::int64_t min_time = INT64_MAX;
  std::int64_t max_time = INT64_MIN;
  std::vector<std::int64_t> raw_times;

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++seen;
    std::istringstream ls(line);
    std::string user, time_str, lat_str, lon_str, loc_str;
    if (!std::getline(ls, user, '\t') || !std::getline(ls, time_str, '\t') ||
        !std::getline(ls, lat_str, '\t') ||
        !std::getline(ls, lon_str, '\t') || !std::getline(ls, loc_str)) {
      continue;
    }
    std::int64_t t;
    if (!ParseIso8601(time_str, &t)) continue;
    char* end = nullptr;
    double lat = std::strtod(lat_str.c_str(), &end);
    if (end == lat_str.c_str()) continue;
    double lon = std::strtod(lon_str.c_str(), &end);
    if (end == lon_str.c_str()) continue;

    auto it = location_ids.find(loc_str);
    PoiId poi;
    if (it == location_ids.end()) {
      if (options.max_locations != 0 &&
          location_ids.size() >= options.max_locations) {
        continue;
      }
      poi = static_cast<PoiId>(data.pois.size());
      location_ids.emplace(loc_str, poi);
      data.pois.push_back(Poi{poi, {lon, lat}});
    } else {
      poi = it->second;
    }
    raw_times.push_back(t);
    data.checkins.push_back(CheckIn{poi, 0});
    min_time = std::min(min_time, t);
    max_time = std::max(max_time, t);
    ++parsed;
  }
  if (seen > 0 && parsed == 0) {
    return Status::Corruption("no line of the input parsed as a check-in");
  }
  for (std::size_t i = 0; i < data.checkins.size(); ++i) {
    data.checkins[i].time = raw_times[i] - min_time;
  }
  std::sort(data.checkins.begin(), data.checkins.end(),
            [](const CheckIn& a, const CheckIn& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.poi < b.poi;
            });
  data.t_end = parsed > 0 ? max_time - min_time : 0;
  data.ComputeBounds();
  return data;
}

Result<Dataset> LoadSnapCheckinsFile(const std::string& path,
                                     const LoaderOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  return LoadSnapCheckins(in, options);
}

}  // namespace tar
