// Query workload generation matching the paper's setup (Section 8): query
// points uniformly sampled from the data set, interval lengths uniformly
// from {2^0, ..., 2^9} days, k = 10 and alpha0 = 0.3 by default.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "core/tar_tree.h"

namespace tar {

struct WorkloadConfig {
  std::size_t num_queries = 1000;
  std::size_t k = 10;
  double alpha0 = 0.3;
  /// Interval lengths (days) to sample from; the paper uses 2^0 .. 2^9.
  std::vector<std::int64_t> interval_days = {1,  2,  4,   8,   16,
                                             32, 64, 128, 256, 512};
  std::uint64_t seed = 7;
};

/// Random queries over `data` per the config. Interval placement is uniform
/// within [0, t_end]; lengths longer than the span are clamped.
std::vector<KnntaQuery> MakeQueries(const Dataset& data,
                                    const WorkloadConfig& config);

/// Batch workload for the collective-processing experiments: every query's
/// interval is one of `num_types` fixed "recent history" intervals (the
/// last 1, 2, 4, ... days before t_end), as apps offer a few preset
/// choices.
std::vector<KnntaQuery> MakeBatchQueries(const Dataset& data,
                                         std::size_t num_queries,
                                         std::size_t num_types,
                                         const WorkloadConfig& config);

}  // namespace tar
