// Loader for the public Gowalla / Brightkite check-in file format
// (SNAP: user \t ISO8601-time \t latitude \t longitude \t location_id).
// Drop the real data file next to the benches and they will use it instead
// of the synthetic generator.
#pragma once

#include <istream>
#include <string>

#include "common/result.h"
#include "core/dataset.h"

namespace tar {

struct LoaderOptions {
  /// Keep at most this many distinct locations (0 = all), by first
  /// appearance. Lets the benches cap memory on the full Gowalla file.
  std::size_t max_locations = 0;
};

/// Parses a SNAP-format check-in stream. Location ids are remapped to dense
/// PoiIds; (longitude, latitude) become (x, y); timestamps become seconds
/// since the earliest check-in. Lines that do not parse are skipped unless
/// every line fails.
Result<Dataset> LoadSnapCheckins(std::istream& in,
                                 const LoaderOptions& options = {});

/// Convenience file wrapper around LoadSnapCheckins.
Result<Dataset> LoadSnapCheckinsFile(const std::string& path,
                                     const LoaderOptions& options = {});

}  // namespace tar
