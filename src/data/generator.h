// Synthetic Gowalla-style LBSN generator.
//
// The paper evaluates on four proprietary check-in data sets (NYC and LA
// from Foursquare tips, GW = Gowalla, GS = Foursquare via Twitter). This
// generator reproduces the three properties every experiment depends on:
//   (i)  per-POI check-in totals follow a discrete power law in the tail
//        (Table 2 reports the fitted beta / xmin per data set),
//   (ii) POIs cluster spatially like an urban area (Gaussian mixture),
//   (iii) check-ins accelerate over the observed period (LBSN growth).
// Presets mirror Table 4, scaled by a factor so the full benchmark suite
// runs on a laptop. A loader for the real Gowalla file format is in
// loader.h for when the public data is available.
#pragma once

#include <cstdint>
#include <string>

#include "core/dataset.h"

namespace tar {

/// \brief Parameters of the synthetic LBSN.
struct GeneratorConfig {
  std::string name = "synthetic";
  std::size_t num_pois = 10000;

  // Popularity: a body/tail mixture. Body totals are 1 + Geometric,
  // truncated below `tail_xmin`; tail totals follow PowerLaw(tail_beta,
  // tail_xmin).
  double tail_fraction = 0.05;   ///< fraction of POIs in the power-law tail
  double tail_beta = 2.8;
  std::int64_t tail_xmin = 50;
  /// Finite tail cutoff: totals above tail_cap_factor * tail_xmin are
  /// resampled (0 disables). Real venue popularity follows a power law
  /// with a finite cutoff — an unbounded tail would make the single most
  /// popular venue orders of magnitude above everything else, which no
  /// LBSN exhibits. Only ~0.3% of tail draws are affected at the default,
  /// so power-law fits (Table 2) are unaffected.
  double tail_cap_factor = 25.0;
  double body_mean = 2.0;        ///< mean of the geometric body part

  // Space: an urban Gaussian-mixture over `space`.
  Box2 space;
  std::size_t num_clusters = 24;
  double cluster_stddev_fraction = 0.03;  ///< stddev / space extent

  // Time: check-ins over [0, span_days] with density growing as
  // t^(1/growth_exponent - 1).
  std::int64_t span_days = 600;
  double growth_exponent = 0.65;

  /// Check-in total a POI needs to be indexed as an effective public POI
  /// (Table 4 setup: 15 / 10 / 100 / 50 for NYC / LA / GW / GS).
  std::int64_t effective_threshold = 10;

  std::uint64_t seed = 42;
};

/// Generates the data set (POIs, time-sorted check-ins, bounds, t_end).
Dataset GenerateLbsn(const GeneratorConfig& config);

/// Presets mirroring the paper's four data sets (Table 4 spans and
/// effective-POI thresholds; Table 2 power-law parameters). `scale`
/// multiplies the POI count: 1.0 reproduces the paper's size, the default
/// benches use smaller scales.
GeneratorConfig NycConfig(double scale = 1.0, std::uint64_t seed = 42);
GeneratorConfig LaConfig(double scale = 1.0, std::uint64_t seed = 42);
GeneratorConfig GwConfig(double scale = 1.0, std::uint64_t seed = 42);
GeneratorConfig GsConfig(double scale = 1.0, std::uint64_t seed = 42);

}  // namespace tar
