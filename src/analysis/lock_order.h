// Runtime lock-order detector (debug builds only).
//
// Two cooperating structures catch latch-hierarchy violations at acquire
// time, before they can deadlock:
//
//   * A per-thread HELD-LOCK STACK. Acquiring a mutex whose (rank, seq)
//     is not strictly greater than the top of the stack — where `seq` is
//     the mutex's construction order, used to order same-rank groups like
//     the buffer-pool shard latches — is a rank inversion. Re-acquiring a
//     mutex already on the stack is a self-deadlock. Both fail
//     immediately with the lock names and the acquisition sites
//     (file:line of every MutexLock/Lock involved).
//
//   * A global ACQUISITION-ORDER GRAPH over lock *names* (one node per
//     lock class, so all 16 "buffer_pool.shard" latches share a node).
//     Acquiring B while holding A records the edge A -> B; an edge that
//     closes a cycle means two threads have used opposite orders — the
//     classic cross-thread ABBA deadlock — even if this run never
//     interleaved them. The report names every edge on the cycle with
//     the sites that created it.
//
// TryLock is exempt from the rank check (a failed try_lock cannot block)
// but a successfully try-acquired mutex still counts as *held* for every
// later acquisition, and still participates in the graph.
//
// Violations call the installed handler (default: print the report to
// stderr and abort — death-testable). Tests may install a recording
// handler; if the handler returns, the acquisition proceeds so the
// held-stack stays balanced.
//
// This header is included by src/common/mutex.h in debug builds, so it
// must only depend on the standard library. The implementation is
// compiled into tar_common (see src/CMakeLists.txt) for the same reason,
// even though the source lives under src/analysis with the other
// checking tools.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tar::lockorder {

/// Registers a mutex at construction; returns its global sequence number
/// (construction order, used to order same-rank acquisitions).
std::uint64_t RegisterMutex();

/// Checks and records the acquisition of `mu` by the calling thread.
/// `try_lock` marks a successful TryLock (exempt from the rank check).
/// Call before blocking on the underlying mutex, with the site of the
/// acquiring MutexLock/Lock call.
void OnAcquire(const void* mu, std::uint32_t rank, std::uint64_t seq,
               const char* name, const char* file, unsigned line,
               bool try_lock);

/// Records the release of `mu` by the calling thread.
void OnRelease(const void* mu) noexcept;

/// True iff the calling thread's held stack contains `mu`.
bool IsHeldByThisThread(const void* mu);

/// Fails through the violation handler unless the calling thread holds
/// `mu` (the debug side of Mutex::AssertHeld).
void AssertHeld(const void* mu, const char* name);

/// Number of locks the calling thread holds (tests).
std::size_t HeldCount();

/// Human-readable held stack of the calling thread, innermost last.
std::string HeldStackDescription();

/// Human-readable dump of the global acquisition-order graph.
std::string GraphDebugString();

/// Drops every recorded graph edge (tests only; held stacks are
/// per-thread and unaffected).
void ResetGraphForTest();

/// Receives the full violation report. Returning resumes the
/// acquisition; the default handler never returns (stderr + abort).
using ViolationHandler = void (*)(const std::string& report);

/// Installs `handler` (nullptr restores the default) and returns the
/// previous one. Tests use this to observe violations without dying.
ViolationHandler SetViolationHandlerForTest(ViolationHandler handler);

}  // namespace tar::lockorder
