#include "analysis/lock_order.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <mutex>
#include <sstream>
#include <string_view>
#include <vector>

namespace tar::lockorder {

namespace {

/// One entry of a thread's held-lock stack.
struct Held {
  const void* mu = nullptr;
  std::uint32_t rank = 0;
  std::uint64_t seq = 0;
  const char* name = "";
  const char* file = "";
  unsigned line = 0;
  bool try_lock = false;
};

/// The calling thread's held stack, innermost (most recent) last.
/// Function-local so it is constructed on first use regardless of static
/// initialization order.
std::vector<Held>& Stack() {
  thread_local std::vector<Held> stack;
  return stack;
}

/// One observed "acquired `to` while holding `from`" fact, with the
/// sites of the first acquisition pair that recorded it.
struct Edge {
  const char* from_file = "";
  unsigned from_line = 0;
  const char* to_file = "";
  unsigned to_line = 0;
  bool via_try = false;
};

/// Graph state. A plain std::mutex on purpose: the detector must not
/// recurse into the ranked tar::Mutex it is checking.
struct Graph {
  std::mutex mu;
  /// name -> rank (of the first mutex registered under that name).
  std::map<std::string, std::uint32_t> rank_of;
  /// name -> successor name -> first edge observed.
  std::map<std::string, std::map<std::string, Edge>> out;
};

Graph& TheGraph() {
  static Graph* g = new Graph();  // never destroyed: mutexes outlive main
  return *g;
}

void DefaultHandler(const std::string& report) {
  std::fputs(report.c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

std::atomic<ViolationHandler> g_handler{&DefaultHandler};

void Violate(const std::string& report) {
  g_handler.load(std::memory_order_acquire)(report);
}

void DescribeHeld(std::ostringstream* os, const Held& h) {
  *os << "  \"" << h.name << "\" (rank " << h.rank << ", seq " << h.seq
      << ") acquired at " << h.file << ":" << h.line
      << (h.try_lock ? " [try]" : "") << "\n";
}

std::string DescribeStack(const std::vector<Held>& stack) {
  std::ostringstream os;
  for (const Held& h : stack) DescribeHeld(&os, h);
  return os.str();
}

/// Depth-first search for a path `from` -> ... -> `target` in the graph
/// (graph mutex must be held). Fills `path` with the node sequence
/// starting at `from` when found.
bool FindPathLocked(const Graph& g, const std::string& from,
                    const std::string& target,
                    std::vector<std::string>* path) {
  path->push_back(from);
  if (from == target) return true;
  auto it = g.out.find(from);
  if (it != g.out.end()) {
    for (const auto& [next, edge] : it->second) {
      // The graph is small (one node per lock class); the path already
      // visited acts as the DFS visited set.
      bool seen = false;
      for (const std::string& p : *path) {
        if (p == next) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      if (FindPathLocked(g, next, target, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

}  // namespace

std::uint64_t RegisterMutex() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void OnAcquire(const void* mu, std::uint32_t rank, std::uint64_t seq,
               const char* name, const char* file, unsigned line,
               bool try_lock) {
  std::vector<Held>& stack = Stack();

  // Self-deadlock: tar::Mutex is non-recursive. One report per
  // acquisition: a recursive acquire skips the rank/graph checks (it
  // would trip them too, burying the real diagnosis).
  for (const Held& h : stack) {
    if (h.mu == mu) {
      std::ostringstream os;
      os << "lock-order violation: recursive acquisition of \"" << name
         << "\" (rank " << rank << ") at " << file << ":" << line
         << "\nheld locks (outermost first):\n"
         << DescribeStack(stack);
      Violate(os.str());
      stack.push_back(Held{mu, rank, seq, name, file, line, try_lock});
      return;
    }
  }

  // Rank discipline: strictly ascending ranks; ties only in ascending
  // construction order (the buffer-pool shard sweep). TryLock is exempt —
  // it cannot block, so it cannot complete a deadlock by itself. The
  // comparison is against the highest-ranked lock held, not the innermost:
  // a low-ranked try-acquisition in between must not hide the outer lock
  // (tar-lint's static lock-order check compares against every held lock;
  // the two must agree on what an inversion is).
  if (!try_lock && !stack.empty()) {
    const Held& top = *std::max_element(
        stack.begin(), stack.end(), [](const Held& a, const Held& b) {
          return a.rank < b.rank || (a.rank == b.rank && a.seq < b.seq);
        });
    const bool ok =
        rank > top.rank || (rank == top.rank && seq > top.seq);
    if (!ok) {
      std::ostringstream os;
      os << "lock-order violation: acquiring \"" << name << "\" (rank "
         << rank << ", seq " << seq << ") at " << file << ":" << line
         << " while holding \"" << top.name << "\" (rank " << top.rank
         << ", seq " << top.seq << ")"
         << "\nheld locks (outermost first):\n"
         << DescribeStack(stack)
         << "the latch hierarchy (src/common/lock_rank.h) only permits "
            "acquiring a strictly higher rank, or an equal rank in "
            "ascending construction order";
      Violate(os.str());
    }
  }

  // Acquisition-order graph: record held -> new edges and look for a
  // cycle (some other thread, or an exempt TryLock, may have recorded
  // the opposite order).
  if (!stack.empty()) {
    Graph& g = TheGraph();
    std::lock_guard<std::mutex> guard(g.mu);
    g.rank_of.emplace(name, rank);
    for (const Held& h : stack) {
      if (std::string_view(h.name) == name) continue;  // same lock class
      auto [it, inserted] = g.out[h.name].try_emplace(name);
      if (inserted) {
        it->second = Edge{h.file, h.line, file, line, try_lock};
        // New edge h.name -> name: a path name -> ... -> h.name now
        // closes a cycle.
        std::vector<std::string> path;
        if (FindPathLocked(g, name, h.name, &path)) {
          std::ostringstream os;
          os << "lock-order violation: acquisition-order cycle between "
                "lock classes\n  \""
             << h.name << "\" -> \"" << name << "\" recorded at " << file
             << ":" << line << " (holding \"" << h.name
             << "\" acquired at " << h.file << ":" << h.line << ")\n";
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const Edge& e = g.out.at(path[i]).at(path[i + 1]);
            os << "  \"" << path[i] << "\" -> \"" << path[i + 1]
               << "\" recorded at " << e.to_file << ":" << e.to_line
               << (e.via_try ? " [try]" : "") << "\n";
          }
          os << "two threads acquiring these lock classes in opposite "
                "orders can deadlock";
          Violate(os.str());
        }
      }
    }
  }

  stack.push_back(Held{mu, rank, seq, name, file, line, try_lock});
}

void OnRelease(const void* mu) noexcept {
  std::vector<Held>& stack = Stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->mu == mu) {
      stack.erase(std::next(it).base());
      return;
    }
  }
  // Unbalanced release: only reachable if a violation handler returned
  // after a recursive-acquisition report. Ignore.
}

bool IsHeldByThisThread(const void* mu) {
  for (const Held& h : Stack()) {
    if (h.mu == mu) return true;
  }
  return false;
}

void AssertHeld(const void* mu, const char* name) {
  if (IsHeldByThisThread(mu)) return;
  std::ostringstream os;
  os << "lock-order violation: AssertHeld(\"" << name
     << "\") failed — the calling thread does not hold it\n"
        "held locks (outermost first):\n"
     << DescribeStack(Stack());
  Violate(os.str());
}

std::size_t HeldCount() { return Stack().size(); }

std::string HeldStackDescription() { return DescribeStack(Stack()); }

std::string GraphDebugString() {
  Graph& g = TheGraph();
  std::lock_guard<std::mutex> guard(g.mu);
  std::ostringstream os;
  os << "acquisition-order graph (" << g.out.size() << " source nodes):\n";
  for (const auto& [from, edges] : g.out) {
    for (const auto& [to, e] : edges) {
      os << "  \"" << from << "\" -> \"" << to << "\" at " << e.to_file
         << ":" << e.to_line << (e.via_try ? " [try]" : "") << "\n";
    }
  }
  return os.str();
}

void ResetGraphForTest() {
  Graph& g = TheGraph();
  std::lock_guard<std::mutex> guard(g.mu);
  g.out.clear();
  g.rank_of.clear();
}

ViolationHandler SetViolationHandlerForTest(ViolationHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &DefaultHandler,
                            std::memory_order_acq_rel);
}

}  // namespace tar::lockorder
