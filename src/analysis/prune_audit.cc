#include "analysis/prune_audit.h"

#include <cstdio>
#include <vector>

namespace tar::analysis {

namespace {

std::string FormatScore(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string EntryPath(TarTree::NodeId node, std::size_t index) {
  return "node:" + std::to_string(node) + "/entry[" + std::to_string(index) +
         "]";
}

}  // namespace

std::string AuditReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "audited %zu queries, %zu certificates (%zu bound, %zu "
                "dominance), %zu subtree POIs proven",
                queries, certificates, bound_certs, dominance_certs,
                subtree_pois);
  return buf;
}

void PruningAuditor::BeginQuery(const void* tag, const char* engine,
                                const TarTree::QueryContext& ctx) {
  QueryRecord record;
  record.engine = engine;
  record.ctx = ctx;
  open_[tag] = queries_.size();
  queries_.push_back(std::move(record));
}

void PruningAuditor::RecordPrune(const PruneCertificate& cert) {
  auto it = open_.find(cert.query_tag);
  if (it == open_.end()) {
    // A certificate outside BeginQuery/EndQuery means a mis-threaded hook;
    // remember it so VerifyAll can fail loudly instead of ignoring it.
    QueryRecord record;
    record.engine = "<unknown>";
    record.orphaned = true;
    record.certs.push_back(cert);
    queries_.push_back(std::move(record));
    return;
  }
  queries_[it->second].certs.push_back(cert);
}

void PruningAuditor::EndQuery(const void* tag) { open_.erase(tag); }

std::size_t PruningAuditor::num_certificates() const {
  std::size_t n = 0;
  for (const QueryRecord& q : queries_) n += q.certs.size();
  return n;
}

void PruningAuditor::Clear() {
  queries_.clear();
  open_.clear();
}

Status PruningAuditor::VerifyAll(const TarTree& tree,
                                 AuditReport* report) const {
  AuditReport local;
  AuditReport* rep = report != nullptr ? report : &local;
  *rep = AuditReport{};
  rep->queries = queries_.size();
  for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
    const QueryRecord& query = queries_[qi];
    const std::string label =
        "query[" + query.engine + "#" + std::to_string(qi) + "]";
    if (query.orphaned) {
      return Status::Corruption(
          label + ": certificate recorded outside BeginQuery/EndQuery — an "
                  "engine hook is mis-threaded");
    }
    for (const PruneCertificate& cert : query.certs) {
      ++rep->certificates;
      if (cert.kind == PruneCertificate::Kind::kBound) {
        ++rep->bound_certs;
      } else {
        ++rep->dominance_certs;
      }
      TAR_RETURN_NOT_OK(VerifyCertificate(tree, query, label, cert, rep));
    }
  }
  return Status::OK();
}

Status PruningAuditor::VerifyCertificate(const TarTree& tree,
                                         const QueryRecord& query,
                                         const std::string& label,
                                         const PruneCertificate& cert,
                                         AuditReport* report) const {
  const bool is_subtree = cert.node != TarTree::kInvalidNodeId;

  if (!is_subtree) {
    // A directly pruned POI item: its recorded values are the exact
    // components the engine computed when it queued the item, so the
    // checks run on the record itself (what can go wrong here is the
    // comparator / termination logic, not the bound arithmetic).
    if (cert.kind == PruneCertificate::Kind::kBound) {
      if (cert.bound < cert.kth_best ||
          (cert.bound == cert.kth_best && cert.poi < cert.kth_poi)) {
        return Status::Corruption(
            label + " pruned poi " + std::to_string(cert.poi) + " (score " +
            FormatScore(cert.bound) + ") beats the kth-best (" +
            FormatScore(cert.kth_best) + " @ poi " +
            std::to_string(cert.kth_poi) +
            "): the search terminated past a better answer");
      }
    } else if (cert.dom_s0 > cert.s0 || cert.dom_s1 > cert.s1) {
      return Status::Corruption(
          label + " pruned poi " + std::to_string(cert.poi) +
          " recorded a non-dominating witness poi " +
          std::to_string(cert.dom_poi));
    }
    return Status::OK();
  }

  // A pruned subtree: descend it and recompute every contained POI's exact
  // components with the same arithmetic the engines score with.
  std::vector<TarTree::NodeId> stack{cert.node};
  while (!stack.empty()) {
    TarTree::NodeId node_id = stack.back();
    stack.pop_back();
    const TarTree::Node& node = tree.node(node_id);
    for (std::size_t i = 0; i < node.entries.size(); ++i) {
      const TarTree::Entry& e = node.entries[i];
      if (!e.is_leaf_entry()) {
        stack.push_back(e.child);
        continue;
      }
      double s0 = 0.0;
      double s1 = 0.0;
      TAR_RETURN_NOT_OK(tree.EntryComponents(e, query.ctx, &s0, &s1)
                            .WithContext(label + " auditing pruned " +
                                         EntryPath(node_id, i)));
      ++report->subtree_pois;
      const std::string at = EntryPath(node_id, i) + " (poi " +
                             std::to_string(e.poi) + ")";
      if (cert.kind == PruneCertificate::Kind::kBound) {
        double exact = query.ctx.alpha0 * s0 + query.ctx.alpha1 * s1;
        if (exact < cert.bound) {
          // The recorded bound does not lower-bound the subtree: Property 1
          // is broken even if the top-k happened to survive.
          return Status::Corruption(
              label + " pruned subtree node:" + std::to_string(cert.node) +
              " claimed bound " + FormatScore(cert.bound) + ", but " + at +
              " has exact score " + FormatScore(exact) +
              " below the bound — Property 1 violated");
        }
        if (exact < cert.kth_best) {
          return Status::Corruption(
              label + " pruned subtree node:" + std::to_string(cert.node) +
              " (bound " + FormatScore(cert.bound) + ", kth-best " +
              FormatScore(cert.kth_best) + " @ poi " +
              std::to_string(cert.kth_poi) + "): " + at +
              " has exact score " + FormatScore(exact) +
              " — pruning dropped a better answer");
        }
      } else {
        if (s0 < cert.s0 || s1 < cert.s1) {
          return Status::Corruption(
              label + " pruned subtree node:" + std::to_string(cert.node) +
              " recorded component bounds (" + FormatScore(cert.s0) + ", " +
              FormatScore(cert.s1) + ") that do not lower-bound " + at);
        }
        if (s0 < cert.dom_s0 || s1 < cert.dom_s1) {
          return Status::Corruption(
              label + " pruned subtree node:" + std::to_string(cert.node) +
              ": witness poi " + std::to_string(cert.dom_poi) +
              " does not dominate " + at + " (" + FormatScore(s0) + ", " +
              FormatScore(s1) + ") — the skyline skip lost a point");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace tar::analysis
