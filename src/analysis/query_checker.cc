#include "analysis/query_checker.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "core/collective.h"
#include "core/mwa.h"
#include "core/query_audit.h"
#include "core/ranking.h"
#include "core/scan_baseline.h"
#include "core/sharded_store.h"
#include "core/tar_tree.h"

namespace tar::analysis {

namespace {

std::string FmtD(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatQuery(const KnntaQuery& q) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{point=(%.17g, %.17g) interval=[%lld, %lld] k=%zu "
                "alpha0=%.17g}",
                q.point.x, q.point.y, static_cast<long long>(q.interval.start),
                static_cast<long long>(q.interval.end), q.k, q.alpha0);
  return buf;
}

/// The seeded dataset and the three processors the checker cross-checks.
struct TestBed {
  TarTreeOptions options;
  std::vector<Poi> pois;
  /// history[i][e] = check-ins of pois[i] in epoch e.
  std::vector<std::vector<std::int32_t>> history;
  double dmax = 1.0;  ///< SpatialNormalizer of the space the bed queries in
  std::unique_ptr<TarTree> bulk;      ///< full history given at insert
  std::unique_ptr<TarTree> streamed;  ///< history fed via AppendEpoch
  std::unique_ptr<ScanBaseline> scan;
};

Status BuildTestBed(const QueryCheckOptions& opt, Rng& rng, TestBed* bed) {
  TarTreeOptions to;
  // The seed walks the configuration space so a sweep covers every
  // grouping strategy and both TIA backends.
  switch (opt.seed % 3) {
    case 0: to.strategy = GroupingStrategy::kIntegral3D; break;
    case 1: to.strategy = GroupingStrategy::kSpatial; break;
    default: to.strategy = GroupingStrategy::kAggregate; break;
  }
  to.tia_backend =
      (opt.seed / 3) % 2 == 0 ? TiaBackend::kMvbt : TiaBackend::kBpTree;
  to.node_size_bytes = 512;
  to.grid = EpochGrid(0, 7 * kSecondsPerDay);
  // Every fourth seed leaves the space unconfigured to exercise the
  // root-MBR fallback both TarTree::QuerySpace and the scan share.
  const bool configured_space = opt.seed % 4 != 0;
  if (configured_space) {
    to.space.lo = {0.0, 0.0};
    to.space.hi = {100.0, 100.0};
  }
  bed->options = to;

  bed->pois.resize(opt.num_pois);
  bed->history.assign(opt.num_pois,
                      std::vector<std::int32_t>(opt.num_epochs, 0));
  std::int64_t max_total = 0;
  for (std::size_t i = 0; i < opt.num_pois; ++i) {
    bed->pois[i] = Poi{static_cast<PoiId>(i + 1),
                       {rng.Uniform(0.0, 100.0), rng.Uniform(0.0, 100.0)}};
    // ~25% of POIs have no history at all (the all-zero-aggregate edge),
    // the rest draw a skewed per-epoch rate with occasional spikes.
    if (rng.Uniform() < 0.25) continue;
    double rate = rng.Exponential(0.5);
    std::int64_t total = 0;
    for (std::int64_t e = 0; e < opt.num_epochs; ++e) {
      std::int64_t c =
          rng.Uniform() < 0.9
              ? rng.UniformInt(0, static_cast<std::int64_t>(rate) + 3)
              : rng.UniformInt(0, 60);
      bed->history[i][e] = static_cast<std::int32_t>(c);
      total += c;
    }
    max_total = std::max(max_total, total);
  }

  bed->bulk = std::make_unique<TarTree>(to);
  bed->bulk->SeedMaxTotal(max_total);
  for (std::size_t i = 0; i < opt.num_pois; ++i) {
    TAR_RETURN_NOT_OK(bed->bulk->InsertPoi(bed->pois[i], bed->history[i])
                          .WithContext("bulk insert"));
  }

  // The streamed twin ingests the same data the online way: empty POIs,
  // then one AppendEpoch per epoch (deliberately not pre-seeding the z
  // normalizer, so the two trees grow different shapes — the checker
  // demands their query results still agree bit-for-bit).
  bed->streamed = std::make_unique<TarTree>(to);
  for (std::size_t i = 0; i < opt.num_pois; ++i) {
    TAR_RETURN_NOT_OK(
        bed->streamed->InsertPoi(bed->pois[i]).WithContext("streamed insert"));
  }
  for (std::int64_t e = 0; e < opt.num_epochs; ++e) {
    std::unordered_map<PoiId, std::int64_t> aggs;
    for (std::size_t i = 0; i < opt.num_pois; ++i) {
      if (bed->history[i][e] > 0) aggs[bed->pois[i].id] = bed->history[i][e];
    }
    if (aggs.empty()) continue;
    TAR_RETURN_NOT_OK(
        bed->streamed->AppendEpoch(e, aggs).WithContext("streamed append"));
  }

  const Box2 space = bed->bulk->QuerySpace();
  bed->dmax = SpatialNormalizer(space);
  bed->scan = std::make_unique<ScanBaseline>(to.grid, space);
  for (std::size_t i = 0; i < opt.num_pois; ++i) {
    TAR_RETURN_NOT_OK(bed->scan->AddPoi(bed->pois[i], bed->history[i])
                          .WithContext("scan insert"));
  }
  return Status::OK();
}

KnntaQuery GenQuery(const QueryCheckOptions& opt, Rng& rng,
                    const EpochGrid& grid, std::size_t qi) {
  const Timestamp span = opt.num_epochs * grid.epoch_length();
  KnntaQuery q;
  q.point = {rng.Uniform(-10.0, 110.0), rng.Uniform(-10.0, 110.0)};
  q.k = static_cast<std::size_t>(
      rng.UniformInt(1, static_cast<std::int64_t>(opt.num_pois) + 2));
  q.alpha0 = rng.Uniform(0.05, 0.95);
  const Timestamp a = rng.UniformInt(0, span - 1);
  const Timestamp b = a + rng.UniformInt(0, span);
  switch (qi % 5) {
    case 1:  // instantaneous (single-epoch) interval
      q.interval = {a, a};
      break;
    case 2:  // reaches before the time axis; aligns up to epoch 0
      q.interval = {a - 2 * span, b};
      break;
    case 3:  // "until forever": exercises the saturating epoch arithmetic
      q.interval = {a, std::numeric_limits<Timestamp>::max()};
      break;
    case 4:  // entirely after all data: gmax falls back to 1.0
      q.interval = {span + a, span + b};
      break;
    default:
      q.interval = {a, b};
      break;
  }
  return q;
}

/// Ground-truth aggregate of POI slot `i` over epoch range [first, last].
std::int64_t GroundAgg(const TestBed& bed, std::size_t i, std::int64_t first,
                       std::int64_t last) {
  const std::vector<std::int32_t>& h = bed.history[i];
  std::int64_t sum = 0;
  const std::int64_t lo = std::max<std::int64_t>(first, 0);
  const std::int64_t hi =
      std::min<std::int64_t>(last, static_cast<std::int64_t>(h.size()) - 1);
  for (std::int64_t e = lo; e <= hi; ++e) sum += h[e];
  return sum;
}

bool BitEqual(const KnntaResult& a, const KnntaResult& b) {
  // memcmp on the doubles: the differential contract is bit-exactness,
  // and tolerant comparison would also wave through -0.0/NaN drift.
  return a.poi == b.poi && a.aggregate == b.aggregate &&
         std::memcmp(&a.score, &b.score, sizeof(a.score)) == 0 &&
         std::memcmp(&a.dist, &b.dist, sizeof(a.dist)) == 0;
}

Status CompareResults(const std::string& label, const char* a_name,
                      const std::vector<KnntaResult>& a, const char* b_name,
                      const std::vector<KnntaResult>& b) {
  if (a.size() != b.size()) {
    return Status::Corruption(label + ": " + a_name + " returned " +
                              std::to_string(a.size()) + " results, " +
                              b_name + " returned " + std::to_string(b.size()));
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (BitEqual(a[i], b[i])) continue;
    return Status::Corruption(
        label + ": results diverge at rank " + std::to_string(i) + ": " +
        a_name + " has poi " + std::to_string(a[i].poi) + " (score " +
        FmtD(a[i].score) + ", dist " + FmtD(a[i].dist) + ", agg " +
        std::to_string(a[i].aggregate) + "), " + b_name + " has poi " +
        std::to_string(b[i].poi) + " (score " + FmtD(b[i].score) + ", dist " +
        FmtD(b[i].dist) + ", agg " + std::to_string(b[i].aggregate) + ")");
  }
  return Status::OK();
}

/// A full-k result must list every POI exactly once.
Status CheckCoversAllPois(const std::string& label,
                          const std::vector<KnntaResult>& r,
                          std::size_t num_pois) {
  if (r.size() != num_pois) {
    return Status::Corruption(label + ": full-k query returned " +
                              std::to_string(r.size()) + " of " +
                              std::to_string(num_pois) + " POIs");
  }
  std::vector<bool> seen(num_pois + 1, false);
  for (const KnntaResult& x : r) {
    if (x.poi == 0 || x.poi > num_pois || seen[x.poi]) {
      return Status::Corruption(label + ": full-k query repeated or invented "
                                "poi " +
                                std::to_string(x.poi));
    }
    seen[x.poi] = true;
  }
  return Status::OK();
}

}  // namespace

std::string QueryCheckReport::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%zu queries, %zu differential + %zu metamorphic checks; %s",
                queries, differential_checks, metamorphic_checks,
                audit.ToString().c_str());
  return buf;
}

Status RunQuerySoundnessCheck(const QueryCheckOptions& opt,
                              QueryCheckReport* report) {
  QueryCheckReport local;
  QueryCheckReport* rep = report != nullptr ? report : &local;
  *rep = QueryCheckReport{};
  if (opt.num_pois == 0 || opt.num_epochs <= 0 || opt.num_queries == 0) {
    return Status::InvalidArgument(
        "query soundness check needs POIs, epochs and queries");
  }

  const std::string seed_label = "seed " + std::to_string(opt.seed);
  Rng rng(opt.seed);
  TestBed bed;
  TAR_RETURN_NOT_OK(BuildTestBed(opt, rng, &bed).WithContext(seed_label));
  const EpochGrid& grid = bed.options.grid;

  // The sharded twin: the same data partitioned over N snapshot-isolated
  // shards (the seed walks 1..4, covering the single-shard degenerate).
  // The space is pinned to the bulk tree's query space so the shared
  // fan-out context normalizes exactly like the unsharded processors even
  // on the unconfigured-space seeds.
  ShardedStoreOptions so;
  so.num_shards = static_cast<std::size_t>(opt.seed % 4) + 1;
  so.tree = bed.options;
  so.tree.space = bed.bulk->QuerySpace();
  std::unique_ptr<ShardedStore> sharded;
  {
    auto opened = ShardedStore::Open(so);
    TAR_RETURN_NOT_OK(
        opened.status().WithContext(seed_label + " sharded open"));
    sharded = std::move(opened).ValueOrDie();
    for (std::size_t i = 0; i < opt.num_pois; ++i) {
      TAR_RETURN_NOT_OK(sharded->InsertPoi(bed.pois[i], bed.history[i])
                            .WithContext("sharded insert"));
    }
  }
  std::vector<std::vector<KnntaResult>> sharded_results(opt.num_queries);

  // One auditor per tree: certificates name node ids, which only resolve
  // in the tree that recorded them. Outside audited builds the auditors
  // stay empty and VerifyAll is a no-op.
  PruningAuditor bulk_audit;
  PruningAuditor streamed_audit;

  std::vector<KnntaQuery> queries;
  std::vector<std::vector<KnntaResult>> bulk_results(opt.num_queries);
  std::vector<std::vector<KnntaResult>> streamed_results(opt.num_queries);

  for (std::size_t qi = 0; qi < opt.num_queries; ++qi) {
    const KnntaQuery q = GenQuery(opt, rng, grid, qi);
    queries.push_back(q);
    const std::string label = seed_label + " query[" + std::to_string(qi) +
                              "] " + FormatQuery(q);
    ++rep->queries;

    // --- Differential: bulk tree == streamed tree == sequential scan. ---
    std::vector<KnntaResult> r_scan;
    TAR_RETURN_NOT_OK(bed.scan->Query(q, &r_scan).WithContext(label));
    {
      ScopedQueryAudit scope(&bulk_audit);
      TAR_RETURN_NOT_OK(
          bed.bulk->Query(q, &bulk_results[qi]).WithContext(label));
    }
    {
      ScopedQueryAudit scope(&streamed_audit);
      TAR_RETURN_NOT_OK(
          bed.streamed->Query(q, &streamed_results[qi]).WithContext(label));
    }
    TAR_RETURN_NOT_OK(
        CompareResults(label, "bulk tree", bulk_results[qi], "scan", r_scan));
    ++rep->differential_checks;
    TAR_RETURN_NOT_OK(CompareResults(label, "streamed tree",
                                     streamed_results[qi], "scan", r_scan));
    ++rep->differential_checks;
    // Sharded fan-out/merge == bulk tree, bit for bit (the shared-context
    // normalization contract). No audit sink here: prune certificates
    // name node ids inside replicas the snapshot stores swap.
    TAR_RETURN_NOT_OK(
        sharded->Query(q, &sharded_results[qi]).WithContext(label));
    TAR_RETURN_NOT_OK(CompareResults(label, "sharded store",
                                     sharded_results[qi], "bulk tree",
                                     bulk_results[qi]));
    ++rep->differential_checks;

    // --- Metamorphic: top-k is a prefix of top-(k+1). ---
    {
      KnntaQuery q1 = q;
      q1.k = q.k + 1;
      std::vector<KnntaResult> r1;
      ScopedQueryAudit scope(&bulk_audit);
      TAR_RETURN_NOT_OK(bed.bulk->Query(q1, &r1).WithContext(label));
      if (r1.size() < bulk_results[qi].size()) {
        return Status::Corruption(label + ": top-(k+1) returned fewer "
                                          "results than top-k");
      }
      for (std::size_t i = 0; i < bulk_results[qi].size(); ++i) {
        if (!BitEqual(bulk_results[qi][i], r1[i])) {
          return Status::Corruption(label + ": top-k is not a prefix of "
                                            "top-(k+1) at rank " +
                                    std::to_string(i));
        }
      }
      ++rep->metamorphic_checks;
    }

    // --- Metamorphic: alpha0 -> 1 degenerates to the distance order,
    // alpha0 -> 0 to the aggregate order (ground truth recomputed from
    // the generator's own history, tie-tolerant as derived in
    // docs/internals.md). Both runs also re-check the differential. ---
    const TimeInterval aligned = grid.AlignOutward(q.interval);
    const std::int64_t first = grid.EpochOf(aligned.start);
    const std::int64_t last = grid.EpochOf(aligned.end);
    {
      KnntaQuery qd = q;
      qd.k = opt.num_pois + 4;
      qd.alpha0 = 1.0 - 1e-12;
      std::vector<KnntaResult> rd, rd_scan;
      TAR_RETURN_NOT_OK(bed.scan->Query(qd, &rd_scan).WithContext(label));
      {
        ScopedQueryAudit scope(&bulk_audit);
        TAR_RETURN_NOT_OK(bed.bulk->Query(qd, &rd).WithContext(label));
      }
      TAR_RETURN_NOT_OK(
          CompareResults(label, "bulk tree (a0~1)", rd, "scan", rd_scan));
      ++rep->differential_checks;
      TAR_RETURN_NOT_OK(CheckCoversAllPois(label, rd, opt.num_pois));
      const double tol = 1e-9 * bed.dmax;
      for (std::size_t i = 0; i + 1 < rd.size(); ++i) {
        const double da = Distance(bed.pois[rd[i].poi - 1].pos, q.point);
        const double db = Distance(bed.pois[rd[i + 1].poi - 1].pos, q.point);
        if (da > db + tol) {
          return Status::Corruption(
              label + ": alpha0->1 order is not the distance order at rank " +
              std::to_string(i) + ": dist(poi " + std::to_string(rd[i].poi) +
              ") = " + FmtD(da) + " > dist(poi " +
              std::to_string(rd[i + 1].poi) + ") = " + FmtD(db));
        }
      }
      ++rep->metamorphic_checks;
    }
    {
      KnntaQuery qa = q;
      qa.k = opt.num_pois + 4;
      qa.alpha0 = 1e-12;
      std::vector<KnntaResult> ra, ra_scan;
      TAR_RETURN_NOT_OK(bed.scan->Query(qa, &ra_scan).WithContext(label));
      {
        ScopedQueryAudit scope(&bulk_audit);
        TAR_RETURN_NOT_OK(bed.bulk->Query(qa, &ra).WithContext(label));
      }
      TAR_RETURN_NOT_OK(
          CompareResults(label, "bulk tree (a0~0)", ra, "scan", ra_scan));
      ++rep->differential_checks;
      TAR_RETURN_NOT_OK(CheckCoversAllPois(label, ra, opt.num_pois));
      // s1 clamps the aggregate at gmax, so compare clamped aggregates;
      // they are integers, making the order requirement exact.
      std::int64_t gmax = 0;
      for (std::size_t i = 0; i < opt.num_pois; ++i) {
        gmax = std::max(gmax, GroundAgg(bed, i, first, last));
      }
      for (std::size_t i = 0; i + 1 < ra.size(); ++i) {
        const std::int64_t ga = std::min(
            GroundAgg(bed, ra[i].poi - 1, first, last), gmax);
        const std::int64_t gb = std::min(
            GroundAgg(bed, ra[i + 1].poi - 1, first, last), gmax);
        if (ga < gb) {
          return Status::Corruption(
              label + ": alpha0->0 order is not the aggregate order at rank " +
              std::to_string(i) + ": agg(poi " + std::to_string(ra[i].poi) +
              ") = " + std::to_string(ga) + " < agg(poi " +
              std::to_string(ra[i + 1].poi) + ") = " + std::to_string(gb));
        }
      }
      ++rep->metamorphic_checks;
    }

    // --- Metamorphic: MaxAggregate is exact and monotone in Iq. ---
    {
      std::int64_t gt = 0;
      for (std::size_t i = 0; i < opt.num_pois; ++i) {
        gt = std::max(gt, GroundAgg(bed, i, first, last));
      }
      TAR_ASSIGN_OR_RETURN(std::int64_t ma, bed.bulk->MaxAggregate(aligned));
      if (ma != gt) {
        return Status::Corruption(label + ": MaxAggregate returned " +
                                  std::to_string(ma) + ", ground truth is " +
                                  std::to_string(gt));
      }
      ++rep->metamorphic_checks;
      constexpr Timestamp kMax = std::numeric_limits<Timestamp>::max();
      const Timestamp len = grid.epoch_length();
      TimeInterval wide;
      wide.start = aligned.start >= len ? aligned.start - len : 0;
      wide.end = aligned.end > kMax - len ? kMax : aligned.end + len;
      Result<std::int64_t> widened =
          bed.bulk->MaxAggregate(grid.AlignOutward(wide));
      TAR_RETURN_NOT_OK(widened.status());
      const std::int64_t mw = widened.ValueOrDie();
      if (mw < ma) {
        return Status::Corruption(
            label + ": MaxAggregate not monotone: widened interval gave " +
            std::to_string(mw) + " < " + std::to_string(ma));
      }
      ++rep->metamorphic_checks;
    }
  }

  // --- Differential: collective processing == individual processing. ---
  {
    std::vector<std::vector<KnntaResult>> coll;
    ScopedQueryAudit scope(&bulk_audit);
    TAR_RETURN_NOT_OK(
        ProcessCollectively(*bed.bulk, queries, &coll, nullptr, nullptr)
            .WithContext(seed_label + " collective"));
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      TAR_RETURN_NOT_OK(CompareResults(
          seed_label + " query[" + std::to_string(qi) + "] " +
              FormatQuery(queries[qi]),
          "collective", coll[qi], "individual", bulk_results[qi]));
      ++rep->differential_checks;
    }
  }

  // --- Metamorphic: MWA pruning algorithm == enumerating baseline
  // (tolerance matches the randomized equivalence tests). ---
  for (std::size_t qi = 0; qi < queries.size() && qi < 2; ++qi) {
    const std::string label = seed_label + " query[" + std::to_string(qi) +
                              "] " + FormatQuery(queries[qi]) + " MWA";
    MwaResult en, pr;
    {
      ScopedQueryAudit scope(&bulk_audit);
      TAR_RETURN_NOT_OK(
          ComputeMwaEnumerating(*bed.bulk, queries[qi], &en, nullptr)
              .WithContext(label));
      TAR_RETURN_NOT_OK(
          ComputeMwaPruning(*bed.bulk, queries[qi], &pr, nullptr, nullptr)
              .WithContext(label));
    }
    auto agree = [](const std::optional<double>& a,
                    const std::optional<double>& b) {
      if (a.has_value() != b.has_value()) return false;
      return !a.has_value() || std::abs(*a - *b) <= 1e-12;
    };
    if (!agree(en.lower, pr.lower) || !agree(en.upper, pr.upper)) {
      auto show = [](const std::optional<double>& v) {
        return v.has_value() ? FmtD(*v) : std::string("none");
      };
      return Status::Corruption(label + ": enumerating [" + show(en.lower) +
                                ", " + show(en.upper) + "] != pruning [" +
                                show(pr.lower) + ", " + show(pr.upper) + "]");
    }
    ++rep->metamorphic_checks;
  }

  auto fold_audit = [rep](const AuditReport& ar) {
    rep->audit.queries += ar.queries;
    rep->audit.certificates += ar.certificates;
    rep->audit.bound_certs += ar.bound_certs;
    rep->audit.dominance_certs += ar.dominance_certs;
    rep->audit.subtree_pois += ar.subtree_pois;
  };

  // Prove the streamed tree's certificates before the epoch append below
  // mutates it: a certificate is only meaningful against the tree state
  // that issued it (an open-ended interval legitimately sees the new
  // epoch, so re-deriving its aggregates afterwards would be a false
  // violation).
  {
    AuditReport ar;
    TAR_RETURN_NOT_OK(streamed_audit.VerifyAll(*bed.streamed, &ar)
                          .WithContext(seed_label + " [streamed tree]"));
    fold_audit(ar);
    streamed_audit.Clear();
  }

  // --- Metamorphic: appending an epoch beyond a query's interval leaves
  // its results bit-identical (the epoch raises z normalizers and grows
  // TIAs, none of which may leak into unrelated intervals). ---
  {
    std::unordered_map<PoiId, std::int64_t> extra;
    for (std::size_t i = 0; i < opt.num_pois; ++i) {
      if (rng.Uniform() < 0.5) extra[bed.pois[i].id] = rng.UniformInt(1, 40);
    }
    if (extra.empty()) extra[bed.pois[0].id] = 7;
    TAR_RETURN_NOT_OK(bed.streamed->AppendEpoch(opt.num_epochs, extra)
                          .WithContext(seed_label + " extra epoch"));
    // The sharded store digests the same batch: closed intervals must be
    // invariant under appends there too, across the snapshot flip every
    // shard performs when it publishes the new epoch.
    TAR_RETURN_NOT_OK(sharded->AppendEpoch(opt.num_epochs, extra)
                          .WithContext(seed_label + " sharded extra epoch"));
    const Timestamp cutoff = grid.EpochStart(opt.num_epochs);
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      if (grid.AlignOutward(queries[qi].interval).end >= cutoff) continue;
      std::vector<KnntaResult> r;
      {
        ScopedQueryAudit scope(&streamed_audit);
        TAR_RETURN_NOT_OK(bed.streamed->Query(queries[qi], &r)
                              .WithContext(seed_label + " re-append"));
      }
      TAR_RETURN_NOT_OK(CompareResults(
          seed_label + " query[" + std::to_string(qi) + "] " +
              FormatQuery(queries[qi]) + " after epoch append",
          "re-run", r, "original", streamed_results[qi]));
      ++rep->metamorphic_checks;
      std::vector<KnntaResult> rs;
      TAR_RETURN_NOT_OK(sharded->Query(queries[qi], &rs)
                            .WithContext(seed_label + " sharded re-append"));
      TAR_RETURN_NOT_OK(CompareResults(
          seed_label + " query[" + std::to_string(qi) + "] " +
              FormatQuery(queries[qi]) + " after sharded epoch append",
          "sharded re-run", rs, "original", sharded_results[qi]));
      ++rep->metamorphic_checks;
    }
  }

  // --- Prove the remaining certificates (the bulk tree was never
  // mutated after its queries; the streamed auditor only holds the
  // post-append re-runs). ---
  {
    AuditReport ar;
    TAR_RETURN_NOT_OK(
        streamed_audit.VerifyAll(*bed.streamed, &ar)
            .WithContext(seed_label + " [streamed tree, post-append]"));
    fold_audit(ar);
  }
  {
    AuditReport ar;
    TAR_RETURN_NOT_OK(bulk_audit.VerifyAll(*bed.bulk, &ar)
                          .WithContext(seed_label + " [bulk tree]"));
    fold_audit(ar);
  }
  return Status::OK();
}

}  // namespace tar::analysis
