#include "analysis/structure_verifier.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <random>
#include <vector>

namespace tar::analysis {

namespace {

/// Per-epoch max of the TIA records of every entry in a node, keyed by the
/// epoch extent. This is the quantity a parent entry's TIA must dominate
/// (Property 1 of the paper).
Status NodeEpochMax(const TarTree::Node& node,
                    std::map<Timestamp, TiaRecord>* out) {
  out->clear();
  std::vector<TiaRecord> records;
  for (const TarTree::Entry& e : node.entries) {
    TAR_RETURN_NOT_OK(e.tia->Records(&records));
    for (const TiaRecord& r : records) {
      auto [it, inserted] = out->emplace(r.extent.start, r);
      if (!inserted) {
        if (it->second.extent != r.extent) {
          return Status::Corruption(
              "sibling TIAs disagree on the extent of epoch starting at " +
              std::to_string(r.extent.start));
        }
        it->second.aggregate = std::max(it->second.aggregate, r.aggregate);
      }
    }
  }
  return Status::OK();
}

}  // namespace

std::string VerifyReport::ToString() const {
  return std::to_string(nodes_visited) + " nodes, " +
         std::to_string(entries_visited) + " entries, " +
         std::to_string(tias_verified) + " TIAs, " +
         std::to_string(intervals_cross_checked) +
         " intervals cross-checked";
}

Status StructureVerifier::VerifyMvbt(const mvbt::Mvbt& tree) const {
  TAR_RETURN_NOT_OK(tree.CheckInvariants());
  // Cross-check point lookups against a full scan at the current version:
  // both walk the same structure through different code paths, so a routing
  // bug that silently drops records shows up as a disagreement.
  std::vector<std::pair<mvbt::Key, mvbt::Value>> all;
  TAR_RETURN_NOT_OK(tree.RangeScan(tree.last_version(), mvbt::kKeyMin,
                                   mvbt::kKeyMax - 1, &all));
  for (std::size_t i = 1; i < all.size(); ++i) {
    if (all[i - 1].first >= all[i].first) {
      return Status::Corruption("range scan keys out of order at index " +
                                std::to_string(i));
    }
  }
  std::size_t step = std::max<std::size_t>(1, all.size() / 16);
  for (std::size_t i = 0; i < all.size(); i += step) {
    auto got = tree.Lookup(tree.last_version(), all[i].first);
    if (!got.ok()) return got.status();
    const auto stored = got.ValueOrDie();
    if (!stored.has_value() || *stored != all[i].second) {
      return Status::Corruption(
          "lookup disagrees with range scan for key " +
          std::to_string(all[i].first));
    }
  }
  return Status::OK();
}

Status StructureVerifier::VerifyBpTree(const bptree::BpTree& tree) const {
  TAR_RETURN_NOT_OK(tree.CheckInvariants());
  std::vector<std::pair<bptree::Key, bptree::Value>> all;
  TAR_RETURN_NOT_OK(
      tree.RangeScan(bptree::kKeyMin, bptree::kKeyMax - 1, &all));
  if (all.size() != tree.size()) {
    return Status::Corruption("size() = " + std::to_string(tree.size()) +
                              " but the full scan returned " +
                              std::to_string(all.size()) + " pairs");
  }
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (i > 0 && all[i - 1].first >= all[i].first) {
      return Status::Corruption("range scan keys out of order at index " +
                                std::to_string(i));
    }
    sum += all[i].second;
  }
  auto range_sum = tree.RangeSum(bptree::kKeyMin, bptree::kKeyMax - 1);
  if (!range_sum.ok()) return range_sum.status();
  if (range_sum.ValueOrDie() != sum) {
    return Status::Corruption("RangeSum disagrees with the full scan (" +
                              std::to_string(range_sum.ValueOrDie()) +
                              " != " + std::to_string(sum) + ")");
  }
  return Status::OK();
}

Status StructureVerifier::VerifyEntryTia(const Tia& tia,
                                         const std::string& path,
                                         VerifyReport* report) const {
  std::vector<TiaRecord> records;
  TAR_RETURN_NOT_OK(tia.Records(&records));

  if (records.size() != tia.num_records()) {
    return Status::Corruption(
        path + ": num_records() = " + std::to_string(tia.num_records()) +
        " but the record scan returned " + std::to_string(records.size()));
  }
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TiaRecord& r = records[i];
    if (r.aggregate <= 0) {
      return Status::Corruption(path + ": non-positive aggregate stored " +
                                "for epoch starting at " +
                                std::to_string(r.extent.start));
    }
    if (!r.extent.Valid()) {
      return Status::Corruption(path + ": inverted epoch extent at " +
                                std::to_string(r.extent.start));
    }
    if (i > 0 && records[i - 1].extent.end >= r.extent.start) {
      return Status::Corruption(
          path + ": overlapping or unsorted epoch extents near " +
          std::to_string(r.extent.start));
    }
    sum += r.aggregate;
  }
  if (sum != tia.total()) {
    return Status::Corruption(path + ": total() = " +
                              std::to_string(tia.total()) +
                              " but the records sum to " +
                              std::to_string(sum));
  }

  // Aggregate(Iq) cross-checked against the raw record scan on sampled
  // intervals: the TIA answers through its index structure, the oracle
  // sums records with extent contained in Iq directly.
  auto cross_check = [&](const TimeInterval& iq) -> Status {
    std::int64_t expect = 0;
    for (const TiaRecord& r : records) {
      if (iq.Contains(r.extent)) expect += r.aggregate;
    }
    auto got = tia.Aggregate(iq);
    if (!got.ok()) return got.status();
    if (got.ValueOrDie() != expect) {
      return Status::Corruption(
          path + ": Aggregate([" + std::to_string(iq.start) + ", " +
          std::to_string(iq.end) + "]) = " +
          std::to_string(got.ValueOrDie()) + " but the record scan gives " +
          std::to_string(expect));
    }
    if (report != nullptr) ++report->intervals_cross_checked;
    return Status::OK();
  };
  if (!records.empty()) {
    TAR_RETURN_NOT_OK(cross_check(
        {records.front().extent.start, records.back().extent.end}));
    std::mt19937_64 rng(options_.seed);
    std::uniform_int_distribution<std::size_t> pick(0, records.size() - 1);
    for (std::size_t s = 0; s < options_.tia_sample_intervals; ++s) {
      std::size_t i = pick(rng);
      std::size_t j = pick(rng);
      if (i > j) std::swap(i, j);
      TAR_RETURN_NOT_OK(cross_check(
          {records[i].extent.start, records[j].extent.end}));
    }
  }

  if (options_.deep_tia) {
    Status st = tia.CheckBackend();
    if (!st.ok()) {
      return Status::Corruption(path + ": " + st.ToString());
    }
  }
  if (report != nullptr) ++report->tias_verified;
  return Status::OK();
}

Status StructureVerifier::VerifyTia(const Tia& tia,
                                    VerifyReport* report) const {
  return VerifyEntryTia(tia, "tia:owner:" + std::to_string(tia.owner()),
                        report);
}

Status StructureVerifier::VerifyBufferPool(const BufferPool& pool) const {
  return pool.CheckIntegrity();
}

Status StructureVerifier::VerifyBufferPoolConcurrency(
    const BufferPool& pool, std::uint64_t expected_fetches) const {
  TAR_RETURN_NOT_OK(pool.CheckIntegrity());
  const std::uint64_t hits = pool.hits();
  const std::uint64_t misses = pool.misses();
  if (hits + misses != expected_fetches) {
    return Status::Corruption(
        "buffer pool lost fetch accounting: hits " + std::to_string(hits) +
        " + misses " + std::to_string(misses) + " != " +
        std::to_string(expected_fetches) + " fetches");
  }
  const std::uint64_t physical_reads = pool.file()->physical_reads();
  if (misses > physical_reads) {
    return Status::Corruption(
        "buffer pool misses (" + std::to_string(misses) +
        ") exceed the file's physical reads (" +
        std::to_string(physical_reads) + "); a miss was not charged");
  }
  return Status::OK();
}

Status StructureVerifier::VerifyTarNode(const TarTree& tree,
                                        TarTree::NodeId id,
                                        const TarTree::Entry* parent_entry,
                                        const std::string& path,
                                        VerifyReport* report) const {
  const TarTree::Node& node = tree.node(id);
  if (report != nullptr) ++report->nodes_visited;

  if (parent_entry != nullptr) {
    // MBR and z-interval containment: the parent's grouping box must cover
    // the union of the member boxes.
    Box3 covered;
    for (const TarTree::Entry& e : node.entries) covered.Extend(e.box);
    if (!parent_entry->box.Contains(covered)) {
      return Status::Corruption(path +
                                ": parent box does not contain the union "
                                "of the member boxes");
    }
    // Aggregate-summary consistency child -> parent: the parent entry's
    // TIA must dominate the per-epoch max of the member TIAs.
    std::map<Timestamp, TiaRecord> epoch_max;
    Status st = NodeEpochMax(node, &epoch_max);
    if (!st.ok()) {
      return Status::Corruption(path + ": " + st.message());
    }
    for (const auto& [start, rec] : epoch_max) {
      auto bound = parent_entry->tia->Aggregate(rec.extent);
      if (!bound.ok()) return bound.status();
      if (bound.ValueOrDie() < rec.aggregate) {
        return Status::Corruption(
            path + ": parent TIA bound " +
            std::to_string(bound.ValueOrDie()) +
            " below the member per-epoch max " +
            std::to_string(rec.aggregate) + " for epoch starting at " +
            std::to_string(start));
      }
    }
  }

  for (std::size_t i = 0; i < node.entries.size(); ++i) {
    const TarTree::Entry& e = node.entries[i];
    const std::string entry_path =
        path + "/entry[" + std::to_string(i) + "]";
    if (report != nullptr) ++report->entries_visited;
    if (e.tia == nullptr) {
      return Status::Corruption(entry_path + ": missing TIA");
    }
    for (std::size_t d = 0; d < 3; ++d) {
      if (!(e.box.lo[d] <= e.box.hi[d])) {
        return Status::Corruption(entry_path + ": inverted box in dim " +
                                  std::to_string(d));
      }
    }
    if (e.box.lo[2] < -1e-9 || e.box.hi[2] > 1.0 + 1e-9) {
      return Status::Corruption(entry_path +
                                ": z-interval outside [0, 1]");
    }
    TAR_RETURN_NOT_OK(VerifyEntryTia(*e.tia, entry_path, report));

    if (node.is_leaf()) {
      auto snap = tree.poi_snapshot(e.poi);
      if (!snap.has_value()) {
        return Status::Corruption(entry_path + ": POI " +
                                  std::to_string(e.poi) +
                                  " not in the registry");
      }
      if (e.box.lo[0] != snap->pos.x || e.box.hi[0] != snap->pos.x ||
          e.box.lo[1] != snap->pos.y || e.box.hi[1] != snap->pos.y) {
        return Status::Corruption(entry_path +
                                  ": leaf box not degenerate at the "
                                  "registered POI position");
      }
      // The redundancy that catches corrupted leaf aggregates: the leaf
      // TIA must sum to exactly the registered running total.
      if (e.tia->total() != snap->total) {
        return Status::Corruption(
            entry_path + ": leaf TIA total " +
            std::to_string(e.tia->total()) +
            " != registered POI total " + std::to_string(snap->total));
      }
    } else {
      TAR_RETURN_NOT_OK(VerifyTarNode(
          tree, e.child, &e,
          path + "/entry[" + std::to_string(i) + "]/node:" +
              std::to_string(e.child),
          report));
    }
  }
  return Status::OK();
}

Status StructureVerifier::VerifyTarTree(const TarTree& tree,
                                        VerifyReport* report) const {
  // A poisoned tree (a WAL-logged mutation died mid-apply) is suspect by
  // definition: even if every structural walk below would pass, reporting
  // it sound invites serving from it. Surface the poison instead.
  if (tree.poisoned()) {
    return Status::Corruption("verify: tree is poisoned: " +
                              tree.poison_status().ToString());
  }
  // Fill bounds, balance, level bookkeeping, registry counts and global
  // TIA dominance are the tree's own invariants.
  TAR_RETURN_NOT_OK(tree.CheckInvariants());
  if (!tree.empty()) {
    TAR_RETURN_NOT_OK(VerifyTarNode(
        tree, tree.root(), nullptr,
        "node:" + std::to_string(tree.root()), report));
  }
  TAR_RETURN_NOT_OK(VerifyEntryTia(tree.global_tia(), "global-tia", report));
  if (options_.check_buffer_pool) {
    TAR_RETURN_NOT_OK(VerifyBufferPool(*tree.tia_buffer_pool()));
  }
  return Status::OK();
}

std::function<Status(const TarTree&)> DeepVerifyOnLoad(
    const VerifyOptions& options) {
  return [options](const TarTree& tree) -> Status {
    return StructureVerifier(options).VerifyTarTree(tree);
  };
}

}  // namespace tar::analysis
