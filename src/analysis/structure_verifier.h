// Structural verification of every index in the TAR-tree stack.
//
// The MVBT's weak/strong version conditions, the B+-tree's order and fill
// invariants, the TAR-tree's MBR containment and aggregate-summary
// dominance (Property 1), the TIA's record/aggregate consistency and the
// buffer pool's per-owner quota are all checkable properties. This
// subsystem deep-checks them on demand: after randomized mutation batches
// in tests, on `tartool check <index-file>`, and (optionally) on every
// persistence load. Each check returns Status::Corruption carrying a path
// to the offending node, so a failure names the broken page rather than
// surfacing later as a plausible-but-wrong aggregate.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "core/tar_tree.h"
#include "storage/buffer_pool.h"
#include "temporal/bptree.h"
#include "temporal/mvbt.h"
#include "temporal/tia.h"

namespace tar::analysis {

/// \brief Knobs for how deep a verification pass digs.
struct VerifyOptions {
  /// Random query intervals per TIA cross-checked against a raw record
  /// scan (the TIA's Aggregate(Iq) must equal the sum over the records
  /// with extent contained in Iq).
  std::size_t tia_sample_intervals = 4;

  /// Seed for the interval sampler (deterministic by default).
  std::uint64_t seed = 0x7a5c0de;

  /// Also run the backing index's own invariant checker (MVBT weak
  /// version condition / B+-tree order and fill) for every TIA. This is
  /// the expensive part of a TAR-tree pass; disable for quick scans.
  bool deep_tia = true;

  /// Check the buffer pool's LRU-list <-> map consistency and quotas.
  bool check_buffer_pool = true;
};

/// \brief Counters describing what a verification pass covered.
struct VerifyReport {
  std::size_t nodes_visited = 0;
  std::size_t entries_visited = 0;
  std::size_t tias_verified = 0;
  std::size_t intervals_cross_checked = 0;

  std::string ToString() const;
};

/// \brief Deep structural checker for all five index subsystems.
///
/// Stateless apart from its options; a single instance can verify any
/// number of indexes. All methods are read-only on the verified structure
/// (they go through the same load paths as queries, so physical-read
/// counters on the underlying PageFile do advance).
class StructureVerifier {
 public:
  explicit StructureVerifier(const VerifyOptions& options = {})
      : options_(options) {}

  /// Multiversion B-tree: block capacity, weak version condition,
  /// responsibility-range partitioning, uniform leaf depth (routes
  /// through Mvbt::CheckInvariants), plus a live-count cross-check
  /// between CountAlive and a full range scan at the current version.
  Status VerifyMvbt(const mvbt::Mvbt& tree) const;

  /// B+-tree: key order, separator consistency, min-fill, uniform leaf
  /// depth (routes through BpTree::CheckInvariants), plus size and
  /// RangeSum cross-checks against a full scan.
  Status VerifyBpTree(const bptree::BpTree& tree) const;

  /// TIA: records sorted, disjoint, positive; num_records()/total()
  /// consistent with a raw scan; Aggregate(Iq) cross-checked against the
  /// record scan on sampled intervals; optionally the backing index's
  /// own invariants (deep_tia).
  Status VerifyTia(const Tia& tia, VerifyReport* report = nullptr) const;

  /// Buffer pool: per-owner residency <= quota, LRU list <-> map
  /// consistency, no duplicate frames, no dangling page ids.
  Status VerifyBufferPool(const BufferPool& pool) const;

  /// Concurrent-consistency check for a pool that N threads just hammered
  /// (call after the threads have joined): structural integrity per
  /// VerifyBufferPool, plus counter coherence — hits + misses must equal
  /// the number of Fetch calls the caller issued, no counter may have been
  /// lost to a race, and every miss must have been charged to the backing
  /// file (misses <= the file's physical reads).
  Status VerifyBufferPoolConcurrency(const BufferPool& pool,
                                     std::uint64_t expected_fetches) const;

  /// TAR-tree: MBR and z-interval containment child -> parent, aggregate
  /// summary dominance (every parent TIA bounds its child node's
  /// per-epoch max), leaf TIA totals matching the POI registry, fill and
  /// balance via TarTree::CheckInvariants, every TIA per VerifyTia, and
  /// the tree's buffer pool per VerifyBufferPool.
  Status VerifyTarTree(const TarTree& tree,
                       VerifyReport* report = nullptr) const;

  const VerifyOptions& options() const { return options_; }

 private:
  Status VerifyTarNode(const TarTree& tree, TarTree::NodeId id,
                       const TarTree::Entry* parent_entry,
                       const std::string& path, VerifyReport* report) const;

  Status VerifyEntryTia(const Tia& tia, const std::string& path,
                        VerifyReport* report) const;

  VerifyOptions options_;
};

/// A TarTree::LoadOptions::deep_verifier that runs a full
/// StructureVerifier pass over the loaded tree:
///
///   auto r = TarTree::LoadFromFile(
///       path, {.verify = true,
///              .deep_verifier = analysis::DeepVerifyOnLoad()});
std::function<Status(const TarTree&)> DeepVerifyOnLoad(
    const VerifyOptions& options = {});

}  // namespace tar::analysis
