// Differential + metamorphic query checker: the generator half of the
// query-soundness oracle (the other half is the pruning-certificate
// auditor in analysis/prune_audit.h).
//
// One seed deterministically expands into a dataset, four processors
// over it (a bulk-built TAR-tree, a streamed TAR-tree fed epoch by epoch,
// a ShardedStore partitioning the same POIs over 1-4 snapshot-isolated
// shards, and the ScanBaseline oracle) and a query workload. The checker
// then asserts properties no correct implementation may violate:
//
//  differential — bulk tree, streamed tree, sharded fan-out/merge and
//    sequential scan agree bit-for-bit on every query result (same
//    normalizer derivation, same score arithmetic, same documented
//    tie-break), and collective processing agrees with individual
//    processing;
//
//  metamorphic — top-k is a prefix of top-(k+1); alpha0 -> 1 degenerates
//    to the pure-distance order and alpha0 -> 0 to the pure-aggregate
//    order; MaxAggregate is exact against recomputed ground truth and
//    monotone under interval widening; MWA pruning matches the
//    enumerating baseline; appending an epoch outside a query's interval
//    leaves its results bit-identical (on the streamed tree and across
//    the sharded store's snapshot publishes alike).
//
// In audited builds every tree query additionally runs under a
// PruningAuditor whose certificates are proven before the check passes.
//
// See docs/internals.md, "Query-soundness oracle".
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "analysis/prune_audit.h"
#include "common/status.h"

namespace tar::analysis {

/// \brief Shape of one seeded soundness check.
struct QueryCheckOptions {
  std::uint64_t seed = 1;        ///< expands into dataset, trees and queries
  std::size_t num_pois = 48;     ///< POIs in the generated dataset
  std::int64_t num_epochs = 10;  ///< epochs of check-in history
  std::size_t num_queries = 10;  ///< kNNTA queries per seed
};

/// What one check covered; every counter is an assertion that held.
struct QueryCheckReport {
  std::size_t queries = 0;              ///< generated kNNTA queries
  std::size_t differential_checks = 0;  ///< bit-exact result comparisons
  std::size_t metamorphic_checks = 0;   ///< property assertions
  AuditReport audit;                    ///< empty outside audited builds

  std::string ToString() const;
};

/// Runs the whole suite for one seed. Any violation comes back as
/// Corruption naming the seed, the query (point, interval, k, alpha0) and
/// the first divergence, so a failing seed reproduces with
/// `tartool audit --seed N`.
Status RunQuerySoundnessCheck(const QueryCheckOptions& options,
                              QueryCheckReport* report = nullptr);

}  // namespace tar::analysis
