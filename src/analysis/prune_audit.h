// Pruning-certificate auditor: the verifying end of the query-audit hooks
// (core/query_audit.h).
//
// Install a PruningAuditor with ScopedQueryAudit, run queries against one
// tree, then call VerifyAll: for every certificate the engines recorded,
// the auditor descends the pruned subtree and proves — by recomputing the
// exact leaf components through the same TarTree::EntryComponents the
// engines score with — that nothing inside beats the recorded bound. A
// violation means a pruning decision dropped a better answer: Property 1
// is broken (or the bound arithmetic was miscompiled/rewritten wrongly),
// and the Status names the offending entry by node path, verifier-style.
//
// See docs/internals.md, "Query-soundness oracle".
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query_audit.h"
#include "core/tar_tree.h"

namespace tar::analysis {

/// What an audit pass covered (mirrors VerifyReport's role).
struct AuditReport {
  std::size_t queries = 0;           ///< BeginQuery/EndQuery pairs seen
  std::size_t certificates = 0;      ///< pruning decisions recorded
  std::size_t bound_certs = 0;       ///< best-first terminations
  std::size_t dominance_certs = 0;   ///< skyline dominance skips
  std::size_t subtree_pois = 0;      ///< POIs proven inside pruned subtrees

  std::string ToString() const;
};

/// \brief Records pruning certificates and proves them post hoc.
///
/// Not thread-safe: install one auditor per thread (the sink registry is
/// thread-local, so this falls out naturally). All audited queries must
/// run against the tree later passed to VerifyAll — certificates name
/// node ids, which only resolve in the tree that issued them — and the
/// tree must not be mutated in between: an AppendEpoch can legitimately
/// change the aggregates an open-ended interval sees, so call VerifyAll
/// (and Clear) before mutating, not after.
class PruningAuditor : public QueryAuditSink {
 public:
  void BeginQuery(const void* tag, const char* engine,
                  const TarTree::QueryContext& ctx) override;
  void RecordPrune(const PruneCertificate& cert) override;
  void EndQuery(const void* tag) override;

  std::size_t num_queries() const { return queries_.size(); }
  std::size_t num_certificates() const;

  /// Proves every recorded certificate against `tree`.
  ///
  /// kBound subtrees: every contained POI's exact score must be >= the
  /// recorded bound (Property 1) and not strictly better than the
  /// recorded kth-best. A pruned POI *item* additionally may not tie the
  /// kth-best with a lower POI id — the queue comparator would have
  /// popped it first (the documented tie-break). Equal-score POIs inside
  /// a pruned *subtree* are legitimate: the internal entry ties the kth
  /// and pops after it, so only strictly-better POIs are violations.
  ///
  /// kDominance: the recorded witness point must dominate (non-strictly)
  /// every contained POI's exact components.
  ///
  /// Returns the first violation as Corruption with the query, the
  /// certificate and the offending entry's node path; fills `report`
  /// (when given) with what was covered either way.
  Status VerifyAll(const TarTree& tree, AuditReport* report = nullptr) const;

  /// Drops all recorded queries and certificates.
  void Clear();

 private:
  struct QueryRecord {
    std::string engine;
    TarTree::QueryContext ctx;
    std::vector<PruneCertificate> certs;
    bool orphaned = false;  ///< certificates arrived without a BeginQuery
  };

  Status VerifyCertificate(const TarTree& tree, const QueryRecord& query,
                           const std::string& label,
                           const PruneCertificate& cert,
                           AuditReport* report) const;

  std::vector<QueryRecord> queries_;
  std::map<const void*, std::size_t> open_;  ///< tag -> queries_ index
};

}  // namespace tar::analysis
