// TIA — temporal index on the aggregate (Section 4.1 of the paper).
//
// Each TAR-tree entry points to a TIA storing one record <ts, te, agg> per
// epoch with a non-zero aggregate. A leaf entry's TIA holds the POI's own
// per-epoch counts; an internal entry's TIA holds, per epoch, the maximum
// aggregate among the TIAs in its child node. Records support epochs of
// varied lengths.
//
// Two backends are provided, both disk-paged through the buffer pool so
// every query is charged page accesses exactly like a disk-resident index:
//   * kMvbt — the multiversion B-tree the paper uses (asymptotically
//     optimal for versioned access; keeps the full update history);
//   * kBpTree — a plain B+-tree, the backend of the aRB-tree family the
//     paper compares against in its related work.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time_types.h"
#include "temporal/bptree.h"
#include "temporal/mvbt.h"

namespace tar {

/// \brief One temporal record: the aggregate over one epoch.
struct TiaRecord {
  TimeInterval extent;     ///< [ts, te] of the epoch
  std::int64_t aggregate;  ///< e.g. number of check-ins in the epoch

  friend bool operator==(const TiaRecord&, const TiaRecord&) = default;
};

/// Which index structure stores the temporal records.
enum class TiaBackend {
  kMvbt,
  kBpTree,
};

const char* ToString(TiaBackend backend);

/// \brief Temporal index on the aggregate of one TAR-tree entry.
///
/// Thread safety: const reads (Aggregate, Records) are safe concurrently
/// — they only mutate the latched buffer pool; Append/RaiseTo require
/// external exclusion.
class Tia {
 public:
  /// \param owner buffer-pool owner id; the paper gives each TIA its own
  ///        small buffer quota (10 slots by default).
  Tia(PageFile* file, BufferPool* pool, OwnerId owner,
      TiaBackend backend = TiaBackend::kMvbt);

  Tia(Tia&&) = default;
  Tia& operator=(Tia&&) = default;

  /// Appends the record for a finished epoch. `aggregate` must be positive
  /// (zero aggregates are simply not stored).
  Status Append(const TimeInterval& extent, std::int64_t aggregate);

  /// Raises the stored aggregate of the epoch starting at extent.start to
  /// at least `aggregate` (no-op if the stored value is already >=). Used
  /// when a POI insertion updates the TIAs along its path.
  Status RaiseTo(const TimeInterval& extent, std::int64_t aggregate);

  /// Sum of `agg` over all records whose extent is contained in iq.
  /// Callers align iq outward to epoch boundaries first (EpochGrid), which
  /// turns the paper's "epoch intersects Iq" into containment.
  ///
  /// `deadline` (optional) is polled cooperatively: before the backend
  /// scan and amortized across the record loop, and the scan's page reads
  /// are charged against its TIA-page budget. A trip surfaces as
  /// kDeadlineExceeded/kCancelled.
  Result<std::int64_t> Aggregate(const TimeInterval& iq,
                                 AccessStats* stats = nullptr,
                                 QueryDeadline* deadline = nullptr) const;

  /// All records in time order.
  Status Records(std::vector<TiaRecord>* out,
                 AccessStats* stats = nullptr) const;

  /// Total aggregate over the whole history (maintained in memory).
  std::int64_t total() const { return total_; }

  /// Number of stored (non-zero) records.
  std::size_t num_records() const { return num_records_; }

  OwnerId owner() const { return owner_; }
  TiaBackend backend() const { return backend_; }

  /// Structural invariants of the backing index (MVBT version conditions
  /// or B+-tree order/fill), plus consistency between the backend's live
  /// record count and num_records(). Used by analysis::StructureVerifier.
  Status CheckBackend() const;

  /// Shared Append/RaiseTo validation: the extent must be a valid interval
  /// whose duration fits the 31 duration bits, and the aggregate must fit
  /// the 32 value bits of the packed representation. Public so mutation
  /// front doors can prevalidate before write-ahead logging — a logged
  /// record must be guaranteed to replay cleanly.
  static Status CheckPackable(const TimeInterval& extent,
                              std::int64_t aggregate);

 private:
  static std::int64_t Pack(const TimeInterval& extent, std::int64_t agg);
  static TiaRecord Unpack(std::int64_t ts, std::int64_t value);

  Status InsertRecord(std::int64_t key, std::int64_t value);
  Result<std::optional<std::int64_t>> LookupRecord(std::int64_t key) const;
  Status OverwriteRecord(std::int64_t key, std::int64_t value);
  Status ScanRecords(std::int64_t lo, std::int64_t hi,
                     std::vector<std::pair<std::int64_t, std::int64_t>>* out,
                     AccessStats* stats) const;

  OwnerId owner_;
  TiaBackend backend_;
  // Exactly one is non-null, selected by backend_ (unique_ptr rather than
  // optional: only the active backend occupies memory, and no
  // optional-access pattern for static analysis to second-guess).
  std::unique_ptr<mvbt::Mvbt> mvbt_;
  std::unique_ptr<bptree::BpTree> bptree_;
  mvbt::Version op_counter_ = 0;
  std::int64_t total_ = 0;
  std::size_t num_records_ = 0;
};

}  // namespace tar
