#include "temporal/mvbt.h"

#include <algorithm>

#include "common/check.h"

namespace tar::mvbt {

namespace {

/// Entries whose lifetime starts at the split version are invisible in the
/// historical node (which is only reachable for versions < v), so they move
/// to the copy rather than being duplicated.
bool MovesToCopy(const Entry& e, Version v) {
  return e.alive() && e.v_start == v;
}

}  // namespace

Mvbt::Mvbt(PageFile* file, BufferPool* pool, OwnerId owner)
    : file_(file), pool_(pool), owner_(owner),
      capacity_(NodeLayout::Capacity(file->page_size())) {
  TAR_CHECK(capacity_ >= 8 && "page size too small for an MVBT node");
  min_live_ = std::max<std::size_t>(2, capacity_ / 5);
  strong_low_ = min_live_ + std::max<std::size_t>(1, min_live_ / 2);
  strong_high_ = capacity_ - min_live_;
  // A key split of > strong_high_ live entries must leave both halves at or
  // above strong_low_, or splits could cascade forever.
  TAR_CHECK(strong_high_ + 1 >= 2 * strong_low_ &&
            strong_high_ > strong_low_);
}

Status Mvbt::LoadForUpdate(PageId id, Node* node) const {
  TAR_ASSIGN_OR_RETURN(const Page* page, file_->ReadPage(id));
  node->is_leaf = page->ReadAt<std::uint8_t>(0) != 0;
  std::uint16_t count = page->ReadAt<std::uint16_t>(2);
  node->entries.resize(count);
  std::size_t off = NodeLayout::kHeaderBytes;
  for (std::uint16_t i = 0; i < count; ++i, off += NodeLayout::kEntryBytes) {
    Entry& e = node->entries[i];
    e.key_lo = page->ReadAt<Key>(off);
    e.key_hi = page->ReadAt<Key>(off + 8);
    e.v_start = page->ReadAt<Version>(off + 16);
    e.v_end = page->ReadAt<Version>(off + 24);
    e.value = page->ReadAt<Value>(off + 32);
  }
  return Status::OK();
}

Result<const Page*> Mvbt::FetchForQuery(PageId id, AccessStats* stats) const {
  bool hit = false;
  auto res = pool_->Fetch(owner_, id, &hit);
  if (!res.ok()) return res.status();
  if (stats != nullptr) {
    if (hit) {
      ++stats->tia_buffer_hits;
    } else {
      ++stats->tia_page_reads;
    }
  }
  return res;
}

Entry Mvbt::EntryAt(const Page& page, std::size_t index) {
  std::size_t off =
      NodeLayout::kHeaderBytes + index * NodeLayout::kEntryBytes;
  Entry e;
  e.key_lo = page.ReadAt<Key>(off);
  e.key_hi = page.ReadAt<Key>(off + 8);
  e.v_start = page.ReadAt<Version>(off + 16);
  e.v_end = page.ReadAt<Version>(off + 24);
  e.value = page.ReadAt<Value>(off + 32);
  return e;
}

Status Mvbt::Store(PageId id, const Node& node) {
  if (node.entries.size() > capacity_) {
    return Status::Corruption("MVBT node exceeds block capacity");
  }
  TAR_ASSIGN_OR_RETURN(Page* page, file_->GetPageForWrite(id));
  page->WriteAt<std::uint8_t>(0, node.is_leaf ? 1 : 0);
  page->WriteAt<std::uint16_t>(2, static_cast<std::uint16_t>(
                                      node.entries.size()));
  std::size_t off = NodeLayout::kHeaderBytes;
  for (const Entry& e : node.entries) {
    page->WriteAt<Key>(off, e.key_lo);
    page->WriteAt<Key>(off + 8, e.key_hi);
    page->WriteAt<Version>(off + 16, e.v_start);
    page->WriteAt<Version>(off + 24, e.v_end);
    page->WriteAt<Value>(off + 32, e.value);
    off += NodeLayout::kEntryBytes;
  }
  return Status::OK();
}

PageId Mvbt::AllocateNode(const Node& node, Status* st) {
  Result<PageId> id = file_->Allocate();
  if (!id.ok()) {
    if (st != nullptr) *st = id.status();
    return kInvalidPageId;
  }
  Status s = Store(id.ValueOrDie(), node);
  if (!s.ok() && st != nullptr) *st = s;
  return id.ValueOrDie();
}

std::optional<Mvbt::RootEntry> Mvbt::RootAt(Version v) const {
  for (auto it = roots_.rbegin(); it != roots_.rend(); ++it) {
    if (it->v_start <= v && v < it->v_end) return *it;
    if (it->v_end <= v) break;  // roots_ is ordered by version
  }
  return std::nullopt;
}

Status Mvbt::FindLeafPath(Version v, Key key, std::vector<PageId>* path,
                          Node* leaf) const {
  auto root = RootAt(v);
  if (!root.has_value()) return Status::NotFound("empty tree at version");
  PageId page = root->page;
  Node node;
  for (;;) {
    path->push_back(page);
    TAR_RETURN_NOT_OK(LoadForUpdate(page, &node));
    if (node.is_leaf) break;
    PageId next = kInvalidPageId;
    for (const Entry& e : node.entries) {
      if (e.alive() && e.key_lo <= key && key < e.key_hi) {
        next = static_cast<PageId>(e.value);
        break;
      }
    }
    if (next == kInvalidPageId) {
      return Status::Corruption("router gap: no live child covers key");
    }
    page = next;
  }
  *leaf = std::move(node);
  return Status::OK();
}

Status Mvbt::Insert(Version v, Key key, Value value) {
  if (v < last_version_) {
    return Status::InvalidArgument("versions must be non-decreasing");
  }
  if (key == kKeyMax) {
    return Status::InvalidArgument("kKeyMax is reserved as a sentinel");
  }
  last_version_ = v;
  Entry record{key, key, v, kVersionAlive, value};

  if (roots_.empty() || roots_.back().v_end != kVersionAlive) {
    Node root;
    root.is_leaf = true;
    root.entries.push_back(record);
    Status st = Status::OK();
    PageId page = AllocateNode(root, &st);
    TAR_RETURN_NOT_OK(st);
    roots_.push_back(RootEntry{v, kVersionAlive, page, true});
    return Status::OK();
  }

  std::vector<PageId> path;
  Node leaf;
  TAR_RETURN_NOT_OK(FindLeafPath(v, key, &path, &leaf));
  for (const Entry& e : leaf.entries) {
    if (e.alive() && e.key_lo == key) {
      return Status::AlreadyExists("live key already present");
    }
  }
  leaf.entries.push_back(record);
  return Restructure(v, path, path.size() - 1, std::move(leaf));
}

Status Mvbt::Erase(Version v, Key key) {
  if (v < last_version_) {
    return Status::InvalidArgument("versions must be non-decreasing");
  }
  if (roots_.empty() || roots_.back().v_end != kVersionAlive) {
    return Status::NotFound("key not alive");
  }
  last_version_ = v;
  std::vector<PageId> path;
  Node leaf;
  TAR_RETURN_NOT_OK(FindLeafPath(v, key, &path, &leaf));
  bool found = false;
  for (std::size_t i = 0; i < leaf.entries.size(); ++i) {
    Entry& e = leaf.entries[i];
    if (e.alive() && e.key_lo == key) {
      if (e.v_start == v) {
        // Inserted and deleted at the same version: never visible.
        leaf.entries.erase(leaf.entries.begin() + i);
      } else {
        e.v_end = v;
      }
      found = true;
      break;
    }
  }
  if (!found) return Status::NotFound("key not alive");
  return Restructure(v, path, path.size() - 1, std::move(leaf));
}

Status Mvbt::Restructure(Version v, const std::vector<PageId>& path,
                         std::size_t level, Node node) {
  PageId page = path[level];
  bool is_root = (level == 0);
  std::size_t live = node.CountAliveEntries();

  bool overflow = node.entries.size() > capacity_;
  bool weak_underflow = !is_root && live < min_live_;
  // An empty live leaf root may simply persist (empty tree from v on) once
  // its historical entries are stored; the root directory stays as is.
  if (!overflow && !weak_underflow) {
    TAR_RETURN_NOT_OK(Store(page, node));
    if (is_root && !node.is_leaf && live == 1) {
      // Height decrease: the single live child becomes the root from v on.
      for (const Entry& e : node.entries) {
        if (e.alive()) {
          Node child;
          TAR_RETURN_NOT_OK(LoadForUpdate(static_cast<PageId>(e.value),
                                          &child));
          // Close the current root period and open one for the child.
          roots_.back().v_end = v;
          if (roots_.back().v_end == roots_.back().v_start) roots_.pop_back();
          roots_.push_back(RootEntry{v, kVersionAlive,
                                     static_cast<PageId>(e.value),
                                     child.is_leaf});
          break;
        }
      }
    }
    return Status::OK();
  }

  ParentOp op;
  if (!is_root) {
    Node parent;
    TAR_RETURN_NOT_OK(LoadForUpdate(path[level - 1], &parent));
    TAR_RETURN_NOT_OK(VersionSplit(v, page, node, &parent, &op));
    // Apply the op to the parent: kill the replaced children, append the
    // new routers.
    for (PageId dead : op.dead_children) {
      for (std::size_t i = 0; i < parent.entries.size(); ++i) {
        Entry& e = parent.entries[i];
        if (e.alive() && static_cast<PageId>(e.value) == dead) {
          if (e.v_start == v) {
            parent.entries.erase(parent.entries.begin() + i);
          } else {
            e.v_end = v;
          }
          break;
        }
      }
    }
    for (const Entry& e : op.new_entries) parent.entries.push_back(e);
    return Restructure(v, path, level - 1, std::move(parent));
  }

  // Root-level structural change.
  TAR_RETURN_NOT_OK(VersionSplit(v, page, node, nullptr, &op));
  roots_.back().v_end = v;
  if (roots_.back().v_end == roots_.back().v_start) roots_.pop_back();
  if (op.new_entries.size() == 1) {
    roots_.push_back(RootEntry{v, kVersionAlive,
                               static_cast<PageId>(op.new_entries[0].value),
                               node.is_leaf});
  } else {
    Node new_root;
    new_root.is_leaf = false;
    new_root.entries = op.new_entries;
    Status st = Status::OK();
    PageId root_page = AllocateNode(new_root, &st);
    TAR_RETURN_NOT_OK(st);
    roots_.push_back(RootEntry{v, kVersionAlive, root_page, false});
  }
  return Status::OK();
}

Status Mvbt::VersionSplit(Version v, PageId page_id, const Node& node,
                          Node* parent, ParentOp* op) {
  // Partition entries: live ones move/copy into the new node; the
  // historical node keeps everything except entries born at v (which are
  // invisible during its lifetime [.., v)).
  Node copy;
  copy.is_leaf = node.is_leaf;
  Node historical;
  historical.is_leaf = node.is_leaf;
  for (const Entry& e : node.entries) {
    if (e.alive()) copy.entries.push_back(e);
    if (!MovesToCopy(e, v)) historical.entries.push_back(e);
  }
  TAR_RETURN_NOT_OK(Store(page_id, historical));
  op->dead_children.push_back(page_id);

  // Responsibility range of this node, read from the parent's live router
  // (the whole key space for the root).
  Key lo = kKeyMin;
  Key hi = kKeyMax;
  if (parent != nullptr) {
    for (const Entry& e : parent->entries) {
      if (e.alive() && static_cast<PageId>(e.value) == page_id) {
        lo = e.key_lo;
        hi = e.key_hi;
        break;
      }
    }
  }

  // Strong version condition, lower bound: merge with a key-adjacent
  // sibling (version-splitting it as well).
  if (parent != nullptr && copy.entries.size() < strong_low_) {
    const Entry* sibling = nullptr;
    for (const Entry& e : parent->entries) {
      if (!e.alive() || static_cast<PageId>(e.value) == page_id) continue;
      if (e.key_hi == lo || e.key_lo == hi) {
        sibling = &e;
        break;
      }
    }
    if (sibling != nullptr) {
      PageId sib_page = static_cast<PageId>(sibling->value);
      Node sib;
      TAR_RETURN_NOT_OK(LoadForUpdate(sib_page, &sib));
      Node sib_hist;
      sib_hist.is_leaf = sib.is_leaf;
      for (const Entry& e : sib.entries) {
        if (e.alive()) copy.entries.push_back(e);
        if (!MovesToCopy(e, v)) sib_hist.entries.push_back(e);
      }
      TAR_RETURN_NOT_OK(Store(sib_page, sib_hist));
      op->dead_children.push_back(sib_page);
      lo = std::min(lo, sibling->key_lo);
      hi = std::max(hi, sibling->key_hi);
    }
  }

  std::sort(copy.entries.begin(), copy.entries.end(),
            [](const Entry& a, const Entry& b) { return a.key_lo < b.key_lo; });

  // Strong version condition, upper bound: key split.
  if (copy.entries.size() > strong_high_) {
    std::size_t mid = copy.entries.size() / 2;
    // The split key must strictly separate the two halves.
    while (mid < copy.entries.size() &&
           copy.entries[mid].key_lo == copy.entries.front().key_lo) {
      ++mid;
    }
    if (mid == copy.entries.size()) {
      return Status::Corruption("cannot key-split: all keys equal");
    }
    Key split = copy.entries[mid].key_lo;
    Node left;
    left.is_leaf = copy.is_leaf;
    left.entries.assign(copy.entries.begin(), copy.entries.begin() + mid);
    Node right;
    right.is_leaf = copy.is_leaf;
    right.entries.assign(copy.entries.begin() + mid, copy.entries.end());
    Status st = Status::OK();
    PageId left_page = AllocateNode(left, &st);
    TAR_RETURN_NOT_OK(st);
    PageId right_page = AllocateNode(right, &st);
    TAR_RETURN_NOT_OK(st);
    op->new_entries.push_back(
        Entry{lo, split, v, kVersionAlive, static_cast<Value>(left_page)});
    op->new_entries.push_back(
        Entry{split, hi, v, kVersionAlive, static_cast<Value>(right_page)});
    return Status::OK();
  }

  Status st = Status::OK();
  PageId copy_page = AllocateNode(copy, &st);
  TAR_RETURN_NOT_OK(st);
  op->new_entries.push_back(
      Entry{lo, hi, v, kVersionAlive, static_cast<Value>(copy_page)});
  return Status::OK();
}

Result<std::optional<Value>> Mvbt::Lookup(Version v, Key key,
                                          AccessStats* stats) const {
  auto root = RootAt(v);
  if (!root.has_value()) return std::optional<Value>{};
  PageId page_id = root->page;
  for (;;) {
    TAR_ASSIGN_OR_RETURN(const Page* page, FetchForQuery(page_id, stats));
    bool is_leaf = page->ReadAt<std::uint8_t>(0) != 0;
    std::uint16_t count = page->ReadAt<std::uint16_t>(2);
    if (is_leaf) {
      for (std::uint16_t i = 0; i < count; ++i) {
        Entry e = EntryAt(*page, i);
        if (e.AliveAt(v) && e.key_lo == key) {
          return std::optional<Value>{e.value};
        }
      }
      return std::optional<Value>{};
    }
    PageId next = kInvalidPageId;
    for (std::uint16_t i = 0; i < count; ++i) {
      Entry e = EntryAt(*page, i);
      if (e.AliveAt(v) && e.key_lo <= key && key < e.key_hi) {
        next = static_cast<PageId>(e.value);
        break;
      }
    }
    if (next == kInvalidPageId) {
      return Status::Corruption("router gap: no child covers key at version");
    }
    page_id = next;
  }
}

Status Mvbt::RangeScanNode(Version v, PageId page_id, Key lo, Key hi,
                           std::vector<std::pair<Key, Value>>* out,
                           AccessStats* stats) const {
  TAR_ASSIGN_OR_RETURN(const Page* page, FetchForQuery(page_id, stats));
  bool is_leaf = page->ReadAt<std::uint8_t>(0) != 0;
  std::uint16_t count = page->ReadAt<std::uint16_t>(2);
  if (is_leaf) {
    for (std::uint16_t i = 0; i < count; ++i) {
      Entry e = EntryAt(*page, i);
      if (e.AliveAt(v) && lo <= e.key_lo && e.key_lo <= hi) {
        out->emplace_back(e.key_lo, e.value);
      }
    }
    return Status::OK();
  }
  for (std::uint16_t i = 0; i < count; ++i) {
    Entry e = EntryAt(*page, i);
    if (e.AliveAt(v) && e.key_lo <= hi && lo < e.key_hi) {
      TAR_RETURN_NOT_OK(RangeScanNode(v, static_cast<PageId>(e.value), lo,
                                      hi, out, stats));
    }
  }
  return Status::OK();
}

Status Mvbt::RangeScan(Version v, Key lo, Key hi,
                       std::vector<std::pair<Key, Value>>* out,
                       AccessStats* stats) const {
  out->clear();
  auto root = RootAt(v);
  if (!root.has_value()) return Status::OK();
  TAR_RETURN_NOT_OK(RangeScanNode(v, root->page, lo, hi, out, stats));
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Result<std::size_t> Mvbt::CountAlive(Version v) const {
  std::vector<std::pair<Key, Value>> all;
  // [kKeyMin, kKeyMax] is closed on both ends, matching RangeScan's
  // inclusive bounds (kKeyMax - 1 would drop a record at the top key).
  TAR_RETURN_NOT_OK(RangeScan(v, kKeyMin, kKeyMax, &all));
  return all.size();
}

Status Mvbt::CheckInvariants() const {
  // Check at each version where the root changed, plus the latest version.
  std::vector<Version> versions;
  for (const RootEntry& r : roots_) versions.push_back(r.v_start);
  versions.push_back(last_version_);

  for (Version v : versions) {
    auto root = RootAt(v);
    if (!root.has_value()) continue;
    // Iterative DFS with (page, is_root, lo, hi, depth, path). The path
    // is the page-id chain from the root, reported on corruption so a
    // failure names the broken node.
    struct Item {
      PageId page;
      bool is_root;
      Key lo, hi;
      std::size_t depth;
      std::string path;
    };
    const std::string at_version = "@v" + std::to_string(v);
    std::vector<Item> stack{{root->page, true, kKeyMin, kKeyMax, 0,
                             "root" + at_version + "/page:" +
                                 std::to_string(root->page)}};
    std::optional<std::size_t> leaf_depth;
    while (!stack.empty()) {
      Item item = stack.back();
      stack.pop_back();
      Node node;
      TAR_RETURN_NOT_OK(LoadForUpdate(item.page, &node));
      if (node.entries.size() > capacity_) {
        return Status::Corruption("node over capacity at " + item.path);
      }
      std::size_t live = 0;
      for (const Entry& e : node.entries) live += e.AliveAt(v);
      if (!item.is_root && live < min_live_) {
        return Status::Corruption("weak version condition violated at " +
                                  item.path);
      }
      if (node.is_leaf) {
        if (leaf_depth.has_value() && *leaf_depth != item.depth) {
          return Status::Corruption("leaves at different depths at " +
                                    item.path);
        }
        leaf_depth = item.depth;
        for (const Entry& e : node.entries) {
          if (e.AliveAt(v) &&
              (e.key_lo < item.lo || e.key_lo >= item.hi)) {
            return Status::Corruption("leaf key outside responsibility at " +
                                      item.path);
          }
        }
        continue;
      }
      // Live children must partition [lo, hi).
      std::vector<Entry> kids;
      for (const Entry& e : node.entries) {
        if (e.AliveAt(v)) kids.push_back(e);
      }
      std::sort(kids.begin(), kids.end(), [](const Entry& a, const Entry& b) {
        return a.key_lo < b.key_lo;
      });
      Key cursor = item.lo;
      for (const Entry& e : kids) {
        if (e.key_lo != cursor) {
          return Status::Corruption("router ranges do not partition at " +
                                    item.path);
        }
        cursor = e.key_hi;
        stack.push_back(Item{static_cast<PageId>(e.value), false, e.key_lo,
                             e.key_hi, item.depth + 1,
                             item.path + "/page:" +
                                 std::to_string(e.value)});
      }
      if (live > 0 && cursor != item.hi) {
        return Status::Corruption("router ranges do not cover the range at " +
                                  item.path);
      }
    }
  }
  return Status::OK();
}

}  // namespace tar::mvbt
