#include "temporal/tia.h"

#include <algorithm>

namespace tar {

const char* ToString(TiaBackend backend) {
  switch (backend) {
    case TiaBackend::kMvbt:
      return "MVBT";
    case TiaBackend::kBpTree:
      return "B+tree";
  }
  return "?";
}

Tia::Tia(PageFile* file, BufferPool* pool, OwnerId owner, TiaBackend backend)
    : owner_(owner), backend_(backend) {
  if (backend_ == TiaBackend::kMvbt) {
    mvbt_ = std::make_unique<mvbt::Mvbt>(file, pool, owner);
  } else {
    bptree_ = std::make_unique<bptree::BpTree>(file, pool, owner);
  }
}

std::int64_t Tia::Pack(const TimeInterval& extent, std::int64_t agg) {
  // value = duration (seconds, 31 bits) << 32 | aggregate (32 bits).
  std::int64_t duration = extent.end - extent.start + 1;
  return (duration << 32) | (agg & 0xFFFFFFFFll);
}

TiaRecord Tia::Unpack(std::int64_t ts, std::int64_t value) {
  std::int64_t duration = value >> 32;
  std::int64_t agg = value & 0xFFFFFFFFll;
  return TiaRecord{{ts, ts + duration - 1}, agg};
}

Status Tia::InsertRecord(std::int64_t key, std::int64_t value) {
  if (backend_ == TiaBackend::kMvbt) {
    return mvbt_->Insert(++op_counter_, key, value);
  }
  auto existing = bptree_->Get(key);
  if (!existing.ok()) return existing.status();
  const std::optional<std::int64_t> stored = existing.ValueOrDie();
  if (stored.has_value()) {
    return Status::AlreadyExists("record for this epoch already stored");
  }
  return bptree_->Put(key, value);
}

Result<std::optional<std::int64_t>> Tia::LookupRecord(std::int64_t key)
    const {
  if (backend_ == TiaBackend::kMvbt) {
    return mvbt_->Lookup(mvbt_->last_version(), key);
  }
  return bptree_->Get(key);
}

Status Tia::OverwriteRecord(std::int64_t key, std::int64_t value) {
  if (backend_ == TiaBackend::kMvbt) {
    TAR_RETURN_NOT_OK(mvbt_->Erase(++op_counter_, key));
    return mvbt_->Insert(++op_counter_, key, value);
  }
  return bptree_->Put(key, value);
}

Status Tia::ScanRecords(
    std::int64_t lo, std::int64_t hi,
    std::vector<std::pair<std::int64_t, std::int64_t>>* out,
    AccessStats* stats) const {
  if (backend_ == TiaBackend::kMvbt) {
    return mvbt_->RangeScanCurrent(lo, hi, out, stats);
  }
  return bptree_->RangeScan(lo, hi, out, stats);
}

Status Tia::CheckPackable(const TimeInterval& extent,
                          std::int64_t aggregate) {
  if (!extent.Valid()) {
    return Status::InvalidArgument("invalid epoch extent");
  }
  if (aggregate >= (1ll << 32) ||
      extent.end - extent.start + 1 >= (1ll << 31)) {
    return Status::InvalidArgument("aggregate or epoch length out of range");
  }
  return Status::OK();
}

Status Tia::Append(const TimeInterval& extent, std::int64_t aggregate) {
  if (aggregate <= 0) {
    return Status::InvalidArgument("TIA stores only non-zero aggregates");
  }
  TAR_RETURN_NOT_OK(CheckPackable(extent, aggregate));
  TAR_RETURN_NOT_OK(InsertRecord(extent.start, Pack(extent, aggregate)));
  total_ += aggregate;
  ++num_records_;
  return Status::OK();
}

Status Tia::RaiseTo(const TimeInterval& extent, std::int64_t aggregate) {
  // Same validation as Append: without it, an aggregate >= 2^32 or an
  // over-long extent would silently corrupt the duration bits in Pack.
  TAR_RETURN_NOT_OK(CheckPackable(extent, aggregate));
  if (aggregate <= 0) return Status::OK();  // nothing to raise
  auto existing = LookupRecord(extent.start);
  if (!existing.ok()) return existing.status();
  const std::optional<std::int64_t> stored = existing.ValueOrDie();
  if (stored.has_value()) {
    TiaRecord old = Unpack(extent.start, *stored);
    if (old.aggregate >= aggregate) return Status::OK();
    TAR_RETURN_NOT_OK(
        OverwriteRecord(extent.start, Pack(extent, aggregate)));
    total_ += aggregate - old.aggregate;
    return Status::OK();
  }
  TAR_RETURN_NOT_OK(InsertRecord(extent.start, Pack(extent, aggregate)));
  total_ += aggregate;
  ++num_records_;
  return Status::OK();
}

Result<std::int64_t> Tia::Aggregate(const TimeInterval& iq,
                                    AccessStats* stats,
                                    QueryDeadline* deadline) const {
  TAR_CHECK_CANCEL(deadline);
  // The TIA-page budget is charged from the stats delta across the scan;
  // when the caller passed no stats, a scratch block keeps the accounting
  // without changing what the caller observes.
  AccessStats scratch;
  AccessStats* counted = stats;
  if (counted == nullptr && deadline != nullptr &&
      deadline->wants_tia_accounting()) {
    counted = &scratch;
  }
  if (counted != nullptr) ++counted->aggregate_calls;
  const std::uint64_t pages_before =
      counted != nullptr ? counted->tia_page_reads : 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> hits;
  TAR_RETURN_NOT_OK(ScanRecords(iq.start, iq.end, &hits, counted));
  if (deadline != nullptr && counted != nullptr) {
    deadline->ChargeTiaPages(counted->tia_page_reads - pages_before);
  }
  std::int64_t sum = 0;
  for (const auto& [ts, value] : hits) {
    TAR_CHECK_CANCEL(deadline);  // Poll() amortizes the clock internally
    TiaRecord rec = Unpack(ts, value);
    if (rec.extent.end <= iq.end) sum += rec.aggregate;
  }
  return sum;
}

Status Tia::CheckBackend() const {
  if (backend_ == TiaBackend::kMvbt) {
    TAR_RETURN_NOT_OK(mvbt_->CheckInvariants());
    auto live = mvbt_->CountAlive(mvbt_->last_version());
    if (!live.ok()) return live.status();
    if (live.ValueOrDie() != num_records_) {
      return Status::Corruption(
          "MVBT live record count disagrees with TIA num_records");
    }
    return Status::OK();
  }
  TAR_RETURN_NOT_OK(bptree_->CheckInvariants());
  if (bptree_->size() != num_records_) {
    return Status::Corruption(
        "B+-tree size disagrees with TIA num_records");
  }
  return Status::OK();
}

Status Tia::Records(std::vector<TiaRecord>* out, AccessStats* stats) const {
  out->clear();
  std::vector<std::pair<std::int64_t, std::int64_t>> hits;
  // Inclusive full-key-range scan: both backends treat [lo, hi] as closed,
  // so hi must be INT64_MAX (the old INT64_MAX - 1 bound dropped a record
  // keyed at the maximum representable timestamp).
  TAR_RETURN_NOT_OK(ScanRecords(INT64_MIN, INT64_MAX, &hits, stats));
  out->reserve(hits.size());
  for (const auto& [ts, value] : hits) out->push_back(Unpack(ts, value));
  return Status::OK();
}

}  // namespace tar
