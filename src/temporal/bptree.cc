#include "temporal/bptree.h"

#include <algorithm>

#include "common/check.h"

namespace tar::bptree {

// Internal nodes use an "exclusive upper bound" representation: slot i is
// (upper_i, child_i) and child i covers keys in [upper_{i-1}, upper_i),
// with upper_{-1} = -inf and the last slot's bound always kKeyMax. Merges
// are then plain concatenations and separators never need recomputing
// from subtree contents.

BpTree::BpTree(PageFile* file, BufferPool* pool, OwnerId owner)
    : file_(file), pool_(pool), owner_(owner),
      capacity_(BpNodeLayout::Capacity(file->page_size())),
      min_fill_(std::max<std::size_t>(1, capacity_ * 2 / 5)) {
  TAR_CHECK(capacity_ >= 4 && "page size too small for a B+-tree node");
}

Status BpTree::Load(PageId id, Node* node) const {
  TAR_ASSIGN_OR_RETURN(const Page* page, file_->ReadPage(id));
  node->is_leaf = page->ReadAt<std::uint8_t>(0) != 0;
  std::uint16_t count = page->ReadAt<std::uint16_t>(2);
  node->keys.resize(count);
  node->values.resize(count);
  std::size_t off = BpNodeLayout::kHeaderBytes;
  for (std::uint16_t i = 0; i < count; ++i, off += BpNodeLayout::kSlotBytes) {
    node->keys[i] = page->ReadAt<Key>(off);
    node->values[i] = page->ReadAt<Value>(off + 8);
  }
  return Status::OK();
}

Result<const Page*> BpTree::FetchForQuery(PageId id,
                                          AccessStats* stats) const {
  bool hit = false;
  auto res = pool_->Fetch(owner_, id, &hit);
  if (!res.ok()) return res.status();
  if (stats != nullptr) {
    if (hit) {
      ++stats->tia_buffer_hits;
    } else {
      ++stats->tia_page_reads;
    }
  }
  return res;
}

Status BpTree::Store(PageId id, const Node& node) {
  if (node.keys.size() > capacity_) {
    return Status::Corruption("B+-tree node exceeds capacity");
  }
  TAR_ASSIGN_OR_RETURN(Page* page, file_->GetPageForWrite(id));
  page->WriteAt<std::uint8_t>(0, node.is_leaf ? 1 : 0);
  page->WriteAt<std::uint16_t>(2,
                               static_cast<std::uint16_t>(node.keys.size()));
  std::size_t off = BpNodeLayout::kHeaderBytes;
  for (std::size_t i = 0; i < node.keys.size(); ++i) {
    page->WriteAt<Key>(off, node.keys[i]);
    page->WriteAt<Value>(off + 8, node.values[i]);
    off += BpNodeLayout::kSlotBytes;
  }
  return Status::OK();
}

PageId BpTree::AllocateNode(const Node& node, Status* st) {
  Result<PageId> id = file_->Allocate();
  if (!id.ok()) {
    if (st != nullptr) *st = id.status();
    return kInvalidPageId;
  }
  Status s = Store(id.ValueOrDie(), node);
  if (!s.ok() && st != nullptr) *st = s;
  return id.ValueOrDie();
}

Status BpTree::Put(Key key, Value value) {
  if (key == kKeyMax) {
    return Status::InvalidArgument("kKeyMax is reserved as a sentinel");
  }
  if (root_ == kInvalidPageId) {
    Node root;
    root.is_leaf = true;
    root.keys = {key};
    root.values = {value};
    Status st = Status::OK();
    root_ = AllocateNode(root, &st);
    TAR_RETURN_NOT_OK(st);
    size_ = 1;
    return Status::OK();
  }
  bool grew = false;
  Key split_key = 0;
  PageId split_page = kInvalidPageId;
  TAR_RETURN_NOT_OK(PutRec(root_, key, value, &grew, &split_key,
                           &split_page));
  if (split_page != kInvalidPageId) {
    Node new_root;
    new_root.is_leaf = false;
    new_root.keys = {split_key, kKeyMax};
    new_root.values = {static_cast<Value>(split_page),
                       static_cast<Value>(root_)};
    Status st = Status::OK();
    root_ = AllocateNode(new_root, &st);
    TAR_RETURN_NOT_OK(st);
  }
  if (grew) ++size_;
  return Status::OK();
}

Status BpTree::PutRec(PageId page, Key key, Value value, bool* grew,
                      Key* split_key, PageId* split_page) {
  *split_page = kInvalidPageId;
  Node node;
  TAR_RETURN_NOT_OK(Load(page, &node));
  if (node.is_leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    std::size_t idx = it - node.keys.begin();
    if (it != node.keys.end() && *it == key) {
      node.values[idx] = value;  // overwrite
      *grew = false;
    } else {
      node.keys.insert(it, key);
      node.values.insert(node.values.begin() + idx, value);
      *grew = true;
    }
  } else {
    std::size_t idx = std::upper_bound(node.keys.begin(), node.keys.end(),
                                       key) -
                      node.keys.begin();
    // keys.back() == kKeyMax, so idx is always a valid child.
    Key child_split_key = 0;
    PageId child_split = kInvalidPageId;
    TAR_RETURN_NOT_OK(PutRec(static_cast<PageId>(node.values[idx]), key,
                             value, grew, &child_split_key, &child_split));
    if (child_split != kInvalidPageId) {
      node.keys.insert(node.keys.begin() + idx, child_split_key);
      node.values.insert(node.values.begin() + idx,
                         static_cast<Value>(child_split));
    }
  }

  if (node.keys.size() <= capacity_) {
    return Store(page, node);
  }
  // Split: the new node takes the lower half, this page keeps the upper
  // half so the parent's existing (bound, child) slot stays valid.
  std::size_t mid = node.keys.size() / 2;
  Node left;
  left.is_leaf = node.is_leaf;
  left.keys.assign(node.keys.begin(), node.keys.begin() + mid);
  left.values.assign(node.values.begin(), node.values.begin() + mid);
  node.keys.erase(node.keys.begin(), node.keys.begin() + mid);
  node.values.erase(node.values.begin(), node.values.begin() + mid);
  // The left node's exclusive upper bound: for leaves the first key kept
  // here; for internal nodes the bound of the left node's last slot
  // (already stored inside it).
  *split_key = node.is_leaf ? node.keys.front() : left.keys.back();
  Status st = Status::OK();
  *split_page = AllocateNode(left, &st);
  TAR_RETURN_NOT_OK(st);
  return Store(page, node);
}

Status BpTree::Erase(Key key) {
  if (root_ == kInvalidPageId) return Status::NotFound("empty tree");
  bool underflow = false;
  Status st = EraseRec(root_, key, &underflow);
  TAR_RETURN_NOT_OK(st);
  --size_;
  // Shrink the root.
  Node root;
  TAR_RETURN_NOT_OK(Load(root_, &root));
  if (!root.is_leaf && root.keys.size() == 1) {
    root_ = static_cast<PageId>(root.values[0]);
  } else if (root.is_leaf && root.keys.empty()) {
    root_ = kInvalidPageId;
  }
  return Status::OK();
}

Status BpTree::EraseRec(PageId page, Key key, bool* underflow) {
  Node node;
  TAR_RETURN_NOT_OK(Load(page, &node));
  if (node.is_leaf) {
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    if (it == node.keys.end() || *it != key) {
      return Status::NotFound("key not present");
    }
    std::size_t idx = it - node.keys.begin();
    node.keys.erase(it);
    node.values.erase(node.values.begin() + idx);
    *underflow = node.keys.size() < min_fill_;
    return Store(page, node);
  }

  std::size_t idx =
      std::upper_bound(node.keys.begin(), node.keys.end(), key) -
      node.keys.begin();
  bool child_underflow = false;
  TAR_RETURN_NOT_OK(EraseRec(static_cast<PageId>(node.values[idx]), key,
                             &child_underflow));
  if (child_underflow) {
    // Rebalance with an adjacent sibling: borrow when it has spare slots,
    // merge otherwise.
    std::size_t sib = idx > 0 ? idx - 1 : idx + 1;
    Node child, sibling;
    TAR_RETURN_NOT_OK(Load(static_cast<PageId>(node.values[idx]), &child));
    TAR_RETURN_NOT_OK(Load(static_cast<PageId>(node.values[sib]), &sibling));
    if (sibling.keys.size() > min_fill_) {
      if (sib < idx) {
        // Move the sibling's last slot to the child's front. The parent
        // separator becomes the moved slot's lower bound: for leaves the
        // moved key itself, for internal nodes the sibling's new bound.
        child.keys.insert(child.keys.begin(), sibling.keys.back());
        child.values.insert(child.values.begin(), sibling.values.back());
        sibling.keys.pop_back();
        sibling.values.pop_back();
        // New separator: for leaves the moved key; for internal nodes the
        // sibling's new last bound (the moved slot keeps its own bound
        // inside the child).
        node.keys[sib] =
            child.is_leaf ? child.keys.front() : sibling.keys.back();
      } else {
        // Move the right sibling's first slot to the child's back.
        child.keys.push_back(sibling.keys.front());
        child.values.push_back(sibling.values.front());
        sibling.keys.erase(sibling.keys.begin());
        sibling.values.erase(sibling.values.begin());
        node.keys[idx] =
            child.is_leaf ? sibling.keys.front() : child.keys.back();
      }
      TAR_RETURN_NOT_OK(Store(static_cast<PageId>(node.values[idx]), child));
      TAR_RETURN_NOT_OK(
          Store(static_cast<PageId>(node.values[sib]), sibling));
    } else {
      // Merge child and sibling into the right-hand page (whose parent
      // slot keeps the correct upper bound); drop the left-hand slot.
      std::size_t left = std::min(idx, sib);
      std::size_t right = std::max(idx, sib);
      Node lnode, rnode;
      TAR_RETURN_NOT_OK(Load(static_cast<PageId>(node.values[left]),
                             &lnode));
      TAR_RETURN_NOT_OK(Load(static_cast<PageId>(node.values[right]),
                             &rnode));
      lnode.keys.insert(lnode.keys.end(), rnode.keys.begin(),
                        rnode.keys.end());
      lnode.values.insert(lnode.values.end(), rnode.values.begin(),
                          rnode.values.end());
      // For internal merges the left node's old last bound (== the parent
      // separator) is already correct inside the merged node.
      TAR_RETURN_NOT_OK(
          Store(static_cast<PageId>(node.values[right]), lnode));
      node.keys.erase(node.keys.begin() + left);
      node.values.erase(node.values.begin() + left);
    }
  }
  *underflow = node.keys.size() < min_fill_;
  return Store(page, node);
}

Result<std::optional<Value>> BpTree::Get(Key key, AccessStats* stats) const {
  if (root_ == kInvalidPageId) return std::optional<Value>{};
  PageId page_id = root_;
  for (;;) {
    TAR_ASSIGN_OR_RETURN(const Page* page, FetchForQuery(page_id, stats));
    bool is_leaf = page->ReadAt<std::uint8_t>(0) != 0;
    std::uint16_t count = page->ReadAt<std::uint16_t>(2);
    if (is_leaf) {
      for (std::uint16_t i = 0; i < count; ++i) {
        std::size_t off =
            BpNodeLayout::kHeaderBytes + i * BpNodeLayout::kSlotBytes;
        Key k = page->ReadAt<Key>(off);
        if (k == key) return std::optional<Value>{page->ReadAt<Value>(off + 8)};
        if (k > key) break;
      }
      return std::optional<Value>{};
    }
    PageId next = kInvalidPageId;
    for (std::uint16_t i = 0; i < count; ++i) {
      std::size_t off =
          BpNodeLayout::kHeaderBytes + i * BpNodeLayout::kSlotBytes;
      if (key < page->ReadAt<Key>(off)) {
        next = static_cast<PageId>(page->ReadAt<Value>(off + 8));
        break;
      }
    }
    if (next == kInvalidPageId) {
      return Status::Corruption("B+-tree router gap");
    }
    page_id = next;
  }
}

Status BpTree::ScanRec(PageId page_id, Key lo, Key hi,
                       std::vector<std::pair<Key, Value>>* out,
                       std::int64_t* sum, AccessStats* stats) const {
  TAR_ASSIGN_OR_RETURN(const Page* page, FetchForQuery(page_id, stats));
  bool is_leaf = page->ReadAt<std::uint8_t>(0) != 0;
  std::uint16_t count = page->ReadAt<std::uint16_t>(2);
  if (is_leaf) {
    for (std::uint16_t i = 0; i < count; ++i) {
      std::size_t off =
          BpNodeLayout::kHeaderBytes + i * BpNodeLayout::kSlotBytes;
      Key k = page->ReadAt<Key>(off);
      if (k < lo) continue;
      if (k > hi) break;
      if (out != nullptr) out->emplace_back(k, page->ReadAt<Value>(off + 8));
      if (sum != nullptr) *sum += page->ReadAt<Value>(off + 8);
    }
    return Status::OK();
  }
  Key lower = kKeyMin;
  for (std::uint16_t i = 0; i < count; ++i) {
    std::size_t off =
        BpNodeLayout::kHeaderBytes + i * BpNodeLayout::kSlotBytes;
    Key upper = page->ReadAt<Key>(off);
    // Child i covers [lower, upper); recurse iff it intersects [lo, hi].
    if (lower <= hi && upper > lo) {
      TAR_RETURN_NOT_OK(
          ScanRec(static_cast<PageId>(page->ReadAt<Value>(off + 8)), lo, hi,
                  out, sum, stats));
    }
    lower = upper;
    if (lower > hi) break;
  }
  return Status::OK();
}

Status BpTree::RangeScan(Key lo, Key hi,
                         std::vector<std::pair<Key, Value>>* out,
                         AccessStats* stats) const {
  out->clear();
  if (root_ == kInvalidPageId) return Status::OK();
  return ScanRec(root_, lo, hi, out, nullptr, stats);
}

Result<std::int64_t> BpTree::RangeSum(Key lo, Key hi,
                                      AccessStats* stats) const {
  std::int64_t sum = 0;
  if (root_ == kInvalidPageId) return sum;
  TAR_RETURN_NOT_OK(ScanRec(root_, lo, hi, nullptr, &sum, stats));
  return sum;
}

Status BpTree::CheckRec(PageId page_id, Key lo, Key hi, std::size_t depth,
                        std::size_t* leaf_depth,
                        const std::string& path) const {
  Node node;
  TAR_RETURN_NOT_OK(Load(page_id, &node));
  if (node.keys.size() > capacity_) {
    return Status::Corruption("node over capacity at " + path);
  }
  if (page_id != root_ && node.keys.size() < min_fill_) {
    return Status::Corruption("node under minimum fill at " + path);
  }
  if (node.is_leaf) {
    if (*leaf_depth == SIZE_MAX) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths at " + path);
    }
    for (std::size_t i = 0; i < node.keys.size(); ++i) {
      if (node.keys[i] < lo || node.keys[i] >= hi) {
        return Status::Corruption("leaf key outside responsibility at " +
                                  path);
      }
      if (i > 0 && node.keys[i - 1] >= node.keys[i]) {
        return Status::Corruption("leaf keys out of order at " + path);
      }
    }
    return Status::OK();
  }
  if (node.keys.back() != hi) {
    return Status::Corruption("last child bound != node bound at " + path);
  }
  Key lower = lo;
  for (std::size_t i = 0; i < node.keys.size(); ++i) {
    Key upper = node.keys[i];
    if (upper <= lower) {
      return Status::Corruption("empty or inverted child range at " + path);
    }
    TAR_RETURN_NOT_OK(CheckRec(static_cast<PageId>(node.values[i]), lower,
                               upper, depth + 1, leaf_depth,
                               path + "/page:" +
                                   std::to_string(node.values[i])));
    lower = upper;
  }
  return Status::OK();
}

Status BpTree::CheckInvariants() const {
  if (root_ == kInvalidPageId) {
    return size_ == 0 ? Status::OK()
                      : Status::Corruption("empty tree but nonzero size");
  }
  std::size_t leaf_depth = SIZE_MAX;
  return CheckRec(root_, kKeyMin, kKeyMax, 0, &leaf_depth,
                  "root/page:" + std::to_string(root_));
}

}  // namespace tar::bptree
