// Disk-based Multiversion B-tree (Becker, Gschwind, Ohler, Seeger,
// Widmayer: "An asymptotically optimal multiversion B-tree", VLDBJ 1996).
//
// The paper implements each TIA (temporal index on the aggregate) with this
// structure because it is asymptotically optimal for versioned key access.
// This implementation supports insertions and deletions at a monotonically
// non-decreasing current version and exact/range queries at any historical
// version. Nodes are serialized into fixed-size pages of a PageFile, and
// query-time reads are routed through a BufferPool so that buffer hits are
// not charged to the node-access metric.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tar::mvbt {

using Key = std::int64_t;
using Version = std::int64_t;
using Value = std::int64_t;

constexpr Key kKeyMin = INT64_MIN;
constexpr Key kKeyMax = INT64_MAX;
/// Sentinel end version of a live entry.
constexpr Version kVersionAlive = INT64_MAX;

/// \brief One slot of an MVBT node.
///
/// Leaf entries hold a data record: key in [key_lo] (key_hi unused),
/// lifetime [v_start, v_end), payload `value`. Internal entries route to a
/// child page responsible for keys [key_lo, key_hi) during [v_start, v_end);
/// `value` stores the child PageId.
struct Entry {
  Key key_lo = 0;
  Key key_hi = 0;
  Version v_start = 0;
  Version v_end = kVersionAlive;
  Value value = 0;

  bool alive() const { return v_end == kVersionAlive; }
  bool AliveAt(Version v) const { return v_start <= v && v < v_end; }

  friend bool operator==(const Entry&, const Entry&) = default;
};

/// Serialized-node byte layout constants.
struct NodeLayout {
  static constexpr std::size_t kHeaderBytes = 8;
  static constexpr std::size_t kEntryBytes = 40;
  static std::size_t Capacity(std::size_t page_size) {
    return (page_size - kHeaderBytes) / kEntryBytes;
  }
};

/// \brief The multiversion B-tree.
///
/// Thread safety: const query methods (Lookup, RangeScan*) are safe
/// concurrently — page access goes through the latched buffer pool;
/// Insert/Erase require external exclusion.
class Mvbt {
 public:
  /// \param pool buffer pool over `file`; query reads go through it using
  ///        `owner` as the cache-quota owner (one TIA = one owner).
  Mvbt(PageFile* file, BufferPool* pool, OwnerId owner);

  Mvbt(const Mvbt&) = delete;
  Mvbt& operator=(const Mvbt&) = delete;
  Mvbt(Mvbt&&) = default;
  Mvbt& operator=(Mvbt&&) = default;

  /// Inserts (key, value) at version v. Versions must be non-decreasing
  /// across all updates. Duplicate live keys are rejected.
  Status Insert(Version v, Key key, Value value);

  /// Logically deletes `key` at version v (the key remains visible at
  /// versions < v).
  Status Erase(Version v, Key key);

  /// Value of `key` as of version v, or nullopt if not alive there.
  Result<std::optional<Value>> Lookup(Version v, Key key,
                                      AccessStats* stats = nullptr) const;

  /// All records alive at version v with key in [lo, hi], in key order.
  Status RangeScan(Version v, Key lo, Key hi,
                   std::vector<std::pair<Key, Value>>* out,
                   AccessStats* stats = nullptr) const;

  /// Range scan at the latest version used by any update.
  Status RangeScanCurrent(Key lo, Key hi,
                          std::vector<std::pair<Key, Value>>* out,
                          AccessStats* stats = nullptr) const {
    return RangeScan(last_version_, lo, hi, out, stats);
  }

  Version last_version() const { return last_version_; }
  bool empty() const { return roots_.empty(); }

  /// Number of records alive at version v (O(result) scan; for tests).
  Result<std::size_t> CountAlive(Version v) const;

  /// Structural invariant checks (block capacity, weak version condition,
  /// responsibility-range partitioning). Intended for tests.
  Status CheckInvariants() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t min_live() const { return min_live_; }

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<Entry> entries;

    std::size_t CountAliveEntries() const {
      std::size_t n = 0;
      for (const Entry& e : entries) n += e.alive();
      return n;
    }
  };

  /// Root directory ("root*"): which page was the root during [v_start,
  /// v_end). Kept in memory; it is tiny.
  struct RootEntry {
    Version v_start;
    Version v_end;
    PageId page;
    bool is_leaf;
  };

  /// Pending update against a parent node: kill the live entries that point
  /// to `dead_children` at version v and append `new_entries`.
  struct ParentOp {
    std::vector<PageId> dead_children;
    std::vector<Entry> new_entries;
  };

  Status LoadForUpdate(PageId id, Node* node) const;

  /// Query-path page access through the buffer pool; hits are recorded as
  /// free, misses as TIA page reads. Queries read entries directly off the
  /// returned page (EntryAt) — no node materialization.
  Result<const Page*> FetchForQuery(PageId id, AccessStats* stats) const;
  static Entry EntryAt(const Page& page, std::size_t index);

  Status Store(PageId id, const Node& node);
  PageId AllocateNode(const Node& node, Status* st);

  /// Root page alive at version v, or nullopt for an empty tree at v.
  std::optional<RootEntry> RootAt(Version v) const;

  /// Descends from the live root to the leaf responsible for `key`,
  /// recording the page path (root first).
  Status FindLeafPath(Version v, Key key, std::vector<PageId>* path,
                      Node* leaf) const;

  /// Restores structural invariants of the node at path[level] after a
  /// mutation, propagating structural changes toward the root.
  Status Restructure(Version v, const std::vector<PageId>& path,
                     std::size_t level, Node node);

  /// Version-split `node` (page `page_id`): copies the live entries into a
  /// fresh node (possibly merging a sibling found in `parent`, possibly key
  /// splitting) and fills `op` with the parent updates. `parent` is nullptr
  /// when the node is the root.
  Status VersionSplit(Version v, PageId page_id, const Node& node,
                      Node* parent, ParentOp* op);

  Status RangeScanNode(Version v, PageId page, Key lo, Key hi,
                       std::vector<std::pair<Key, Value>>* out,
                       AccessStats* stats) const;

  PageFile* file_;
  BufferPool* pool_;
  OwnerId owner_;
  std::size_t capacity_;     // b: max entries per node
  std::size_t min_live_;     // d: weak version condition
  std::size_t strong_low_;   // lower strong bound after restructuring
  std::size_t strong_high_;  // upper strong bound after restructuring
  Version last_version_ = 0;
  std::vector<RootEntry> roots_;
};

}  // namespace tar::mvbt
