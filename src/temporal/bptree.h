// Disk-paged B+-tree (int64 keys and values).
//
// This is the temporal backend of the aRB-tree family (Papadias et al.,
// "Historical spatio-temporal aggregation"): each R-tree entry points to a
// B-tree over per-epoch aggregates. The paper argues a B-tree can only
// index *fixed-length* epochs (keys are scalars, not intervals) — this
// implementation exists so that claim is testable: `Tia` can run on either
// this B+-tree or the multiversion B-tree and the benches compare them.
//
// Same deployment model as the MVBT: nodes serialized into PageFile pages,
// query reads through the BufferPool with per-owner quotas.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/stats.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace tar::bptree {

using Key = std::int64_t;
using Value = std::int64_t;

constexpr Key kKeyMin = INT64_MIN;
constexpr Key kKeyMax = INT64_MAX;

/// Serialized-node layout: 8-byte header (leaf flag, count), then `count`
/// slots of 16 bytes (key, value-or-child). Internal nodes hold separator
/// keys: child i covers keys in [key_{i-1}, key_i) with key_{-1} = -inf.
struct BpNodeLayout {
  static constexpr std::size_t kHeaderBytes = 8;
  static constexpr std::size_t kSlotBytes = 16;
  static std::size_t Capacity(std::size_t page_size) {
    return (page_size - kHeaderBytes) / kSlotBytes;
  }
};

/// \brief A single-version disk-paged B+-tree.
///
/// Thread safety: const query methods (Get, RangeScan, RangeSum) are safe
/// concurrently — page access goes through the latched buffer pool;
/// Put/Erase require external exclusion.
class BpTree {
 public:
  BpTree(PageFile* file, BufferPool* pool, OwnerId owner);

  BpTree(BpTree&&) = default;
  BpTree& operator=(BpTree&&) = default;

  /// Inserts or overwrites a key.
  Status Put(Key key, Value value);

  /// Removes a key; NotFound if absent.
  Status Erase(Key key);

  Result<std::optional<Value>> Get(Key key,
                                   AccessStats* stats = nullptr) const;

  /// All pairs with key in [lo, hi], in key order.
  Status RangeScan(Key lo, Key hi, std::vector<std::pair<Key, Value>>* out,
                   AccessStats* stats = nullptr) const;

  /// Sum of values with key in [lo, hi] (no output materialization).
  Result<std::int64_t> RangeSum(Key lo, Key hi,
                                AccessStats* stats = nullptr) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  /// Structural checks: key order, separator consistency, fill bounds,
  /// uniform leaf depth. For tests.
  Status CheckInvariants() const;

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<Key> keys;
    std::vector<Value> values;  // leaf: payloads; internal: child PageIds
  };

  Status Load(PageId id, Node* node) const;
  Result<const Page*> FetchForQuery(PageId id, AccessStats* stats) const;
  Status Store(PageId id, const Node& node);
  PageId AllocateNode(const Node& node, Status* st);

  /// Recursive insert; sets *split_key / *split_page when the child split.
  Status PutRec(PageId page, Key key, Value value, bool* grew,
                Key* split_key, PageId* split_page);

  /// Recursive erase; sets *underflow when the node dropped below minimum.
  Status EraseRec(PageId page, Key key, bool* underflow);

  Status ScanRec(PageId page, Key lo, Key hi,
                 std::vector<std::pair<Key, Value>>* out,
                 std::int64_t* sum, AccessStats* stats) const;

  Status CheckRec(PageId page, Key lo, Key hi, std::size_t depth,
                  std::size_t* leaf_depth, const std::string& path) const;

  PageFile* file_;
  BufferPool* pool_;
  OwnerId owner_;
  std::size_t capacity_;
  std::size_t min_fill_;
  PageId root_ = kInvalidPageId;
  std::size_t size_ = 0;
};

}  // namespace tar::bptree
