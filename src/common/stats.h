// Access accounting: the paper's primary cost metric is node accesses.
#pragma once

#include <cstdint>
#include <string>

namespace tar {

/// \brief Counters for one query (or one batch of queries).
///
/// "Node accesses" in the paper = R-tree nodes read during search plus TIA
/// pages fetched from (simulated) disk; TIA buffer-pool hits are free.
struct AccessStats {
  std::uint64_t rtree_node_reads = 0;
  std::uint64_t rtree_leaf_reads = 0;  ///< subset of rtree_node_reads
  std::uint64_t tia_page_reads = 0;    ///< buffer-pool misses
  std::uint64_t tia_buffer_hits = 0;   ///< served from the pool, not counted
  std::uint64_t entries_scanned = 0;   ///< entries examined (CPU proxy)
  std::uint64_t aggregate_calls = 0;   ///< TIA Aggregate() invocations

  std::uint64_t NodeAccesses() const {
    return rtree_node_reads + tia_page_reads;
  }

  void Reset() { *this = AccessStats{}; }

  AccessStats& operator+=(const AccessStats& o) {
    rtree_node_reads += o.rtree_node_reads;
    rtree_leaf_reads += o.rtree_leaf_reads;
    tia_page_reads += o.tia_page_reads;
    tia_buffer_hits += o.tia_buffer_hits;
    entries_scanned += o.entries_scanned;
    aggregate_calls += o.aggregate_calls;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace tar
