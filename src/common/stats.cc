#include "common/stats.h"

#include <cstdio>

namespace tar {

std::string AccessStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "node_accesses=%llu (rtree=%llu tia=%llu) buffer_hits=%llu "
                "entries=%llu agg_calls=%llu",
                static_cast<unsigned long long>(NodeAccesses()),
                static_cast<unsigned long long>(rtree_node_reads),
                static_cast<unsigned long long>(tia_page_reads),
                static_cast<unsigned long long>(tia_buffer_hits),
                static_cast<unsigned long long>(entries_scanned),
                static_cast<unsigned long long>(aggregate_calls));
  return buf;
}

}  // namespace tar
