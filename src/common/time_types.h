// Time axis discretization: epochs and query time intervals.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

namespace tar {

/// Timestamps are seconds since the application start t0.
using Timestamp = std::int64_t;

constexpr Timestamp kSecondsPerDay = 86400;

/// \brief A closed time interval [start, end], end inclusive.
///
/// Used both for query intervals Iq and for epoch extents <ts, te>.
struct TimeInterval {
  Timestamp start = 0;
  Timestamp end = 0;

  bool Valid() const { return start <= end; }

  /// True iff `other` is fully contained in this interval.
  bool Contains(const TimeInterval& other) const {
    return start <= other.start && other.end <= end;
  }

  bool Intersects(const TimeInterval& other) const {
    return start <= other.end && other.start <= end;
  }

  Timestamp Length() const { return end - start; }

  friend bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

/// \brief Maps timestamps to fixed-length epochs.
///
/// Epoch i covers [t0 + i*len, t0 + (i+1)*len). The paper discretizes the
/// time axis into epochs (default 7 days); the aggregate g(p, Iq) sums the
/// check-in counts of the epochs intersecting Iq, which the TIA implements
/// as containment of the epoch extent in Iq after Iq is aligned outward to
/// epoch boundaries.
class EpochGrid {
 public:
  EpochGrid() = default;
  EpochGrid(Timestamp t0, Timestamp epoch_length)
      : t0_(t0), len_(epoch_length) {}

  Timestamp t0() const { return t0_; }
  Timestamp epoch_length() const { return len_; }

  /// Index of the epoch containing `t` (t >= t0 assumed).
  std::int64_t EpochOf(Timestamp t) const { return (t - t0_) / len_; }

  /// Start of epoch e. Saturates at the far end of the time axis so that
  /// intervals reaching INT64_MAX (an "until forever" query) stay
  /// representable instead of overflowing the signed multiply.
  Timestamp EpochStart(std::int64_t e) const {
    constexpr Timestamp kMax = std::numeric_limits<Timestamp>::max();
    if (e > (kMax - t0_) / len_) return kMax;
    return t0_ + e * len_;
  }

  /// Inclusive end of epoch e (one tick before the next epoch starts);
  /// saturates like EpochStart for epochs touching the end of the axis.
  Timestamp EpochEnd(std::int64_t e) const {
    constexpr Timestamp kMax = std::numeric_limits<Timestamp>::max();
    if (e >= (kMax - t0_) / len_) return kMax;
    return t0_ + (e + 1) * len_ - 1;
  }

  TimeInterval EpochExtent(std::int64_t e) const {
    return {EpochStart(e), EpochEnd(e)};
  }

  /// Expands Iq outward so that it exactly covers every epoch it intersects.
  /// After alignment, "epoch intersects Iq" == "epoch contained in Iq".
  TimeInterval AlignOutward(const TimeInterval& iq) const {
    std::int64_t first = EpochOf(std::max<Timestamp>(iq.start, t0_));
    std::int64_t last = EpochOf(std::max<Timestamp>(iq.end, t0_));
    return {EpochStart(first), EpochEnd(last)};
  }

  /// Number of whole epochs covering [t0, now].
  std::int64_t NumEpochs(Timestamp now) const { return EpochOf(now) + 1; }

 private:
  Timestamp t0_ = 0;
  Timestamp len_ = 7 * kSecondsPerDay;
};

}  // namespace tar
