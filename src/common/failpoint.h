// Deterministic, seedable fault injection at named sites.
//
// A failpoint is a named place in the storage or persistence code where a
// failure can be injected on demand: an I/O error, an allocation failure,
// a torn (partially persisted) write, or a flipped bit. Production builds
// pay one relaxed atomic load per site when nothing is armed.
//
// Arming is driven by a spec string, normally taken from the
// TAR_FAILPOINTS environment variable at first use:
//
//   TAR_FAILPOINTS="page_file.read=err@0.01;persist.write=torn@2"
//
// Grammar: `site=action[@param]` entries separated by ';' or ','.
//
//   actions  err    inject Status::IoError
//            alloc  inject Status::ResourceExhausted
//            torn   persist only a prefix of the write (persistence sites;
//                   elsewhere it degrades to err)
//            flip   flip one bit of the written payload (persistence
//                   sites; elsewhere it degrades to err)
//            delay  sleep for a wall-clock delay, then succeed — models a
//                   slow device or a cold cache instead of a failure. The
//                   first parameter is the delay in milliseconds and is
//                   required: `site=delay@ms` or `site=delay@ms@param`
//                   with the usual probability/nth selector second.
//            off    disarm the site
//   param    omitted    fire on every hit
//            p in (0,1) fire with probability p — deterministic in the
//                       seed and the per-site hit counter
//            n >= 1     fire on exactly the n-th hit of the site (1-based)
//            shard:i    only hits from shard i count (i >= 0); hits from
//                       other shards — or from outside any shard scope —
//                       pass through untouched and untallied. The shard
//                       scope is declared by the hitting code with
//                       ScopedShard (ShardedStore brackets every
//                       per-shard call); it composes with the selector
//                       and delay parameters in any order, and the same
//                       site may be armed once per shard.
//
// A `seed=N` entry (or TAR_FAILPOINTS_SEED) fixes the decision seed, so a
// probabilistic spec replays the identical fire pattern run after run.
// Unknown sites, actions, or malformed parameters are configuration
// errors: Configure returns InvalidArgument, and an invalid TAR_FAILPOINTS
// environment spec aborts at startup (a typo must not silently disarm a
// fault-injection run).
//
// The site catalog lives in docs/internals.md ("Failure model").
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace tar::fail {

/// What an armed failpoint does when it fires.
enum class Action : unsigned char {
  kOff = 0,
  kError,      ///< Status::IoError
  kAllocFail,  ///< Status::ResourceExhausted
  kTornWrite,  ///< persist a prefix, then fail (persistence sites)
  kBitFlip,    ///< flip one bit of the payload (persistence sites)
  kDelay,      ///< sleep delay_ms, then proceed normally (slow I/O)
};

const char* ToString(Action action);

/// Outcome of evaluating one hit of a site.
struct FireResult {
  Action action = Action::kOff;
  /// Deterministic per-fire seed for torn/flip payload decisions.
  std::uint64_t seed = 0;
  /// The configured sleep for kDelay fires. Informational: the sleep has
  /// already happened inside Hit() by the time the caller sees this.
  double delay_ms = 0.0;
};

/// Hit/fire counters of one armed site (for sweeps and reports).
struct SiteReport {
  std::string site;
  Action action = Action::kOff;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
};

/// The shard index the current thread is operating on behalf of, or -1
/// outside any shard scope. Consulted by Hit() for `shard:i`-scoped
/// sites.
int CurrentShard();

/// \brief RAII shard scope for the calling thread.
///
/// ShardedStore brackets every per-shard call (stage, publish, query
/// fan-out, repair) with one of these so `site=...@shard:i` specs can
/// target a single shard deterministically. Nests: the previous scope is
/// restored on destruction.
class ScopedShard {
 public:
  explicit ScopedShard(int shard);
  ~ScopedShard();

  ScopedShard(const ScopedShard&) = delete;
  ScopedShard& operator=(const ScopedShard&) = delete;

 private:
  int prev_;
};

/// \brief Process-wide registry of armed failpoints.
///
/// Thread safety: fully thread-safe. `enabled()` is one relaxed atomic
/// load (the hot-path guard); Hit/Configure serialize on an internal
/// latch, which is acceptable because failpoints are a test facility.
class FaultInjector {
 public:
  /// The process-wide injector. On first use it arms itself from the
  /// TAR_FAILPOINTS environment variable (aborting on a malformed spec).
  static FaultInjector& Global();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Replaces the armed set with `spec` (see the grammar above). An empty
  /// spec disarms everything. On error nothing is armed.
  Status Configure(const std::string& spec) TAR_EXCLUDES(mu_);

  /// Disarms every site and resets all counters.
  void Clear() TAR_EXCLUDES(mu_);

  /// True iff any site is armed. The cheap guard for hot paths.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one hit of `site` and decides whether it fires. Sites that
  /// are not armed return kOff (but the process-wide hit is not tracked;
  /// only armed sites count). A kDelay fire performs its sleep here —
  /// after the registry latch is released, so only the hitting thread
  /// stalls — which is what lets every site support `delay` without
  /// call-site changes (call sites treat kDelay like kOff).
  FireResult Hit(const char* site) TAR_EXCLUDES(mu_);

  /// Counters of every armed site.
  std::vector<SiteReport> Snapshot() const TAR_EXCLUDES(mu_);

  /// Times `site` has fired since it was armed (0 if not armed).
  std::uint64_t fires(const std::string& site) const TAR_EXCLUDES(mu_);

  /// The full site catalog (compiled in; Configure rejects anything else).
  static std::vector<std::string> KnownSites();
  static bool IsKnownSite(const std::string& site);

 private:
  FaultInjector();

  struct Site {
    Action action = Action::kOff;
    double probability = -1.0;  ///< fire chance; < 0 means "not probabilistic"
    std::uint64_t nth = 0;      ///< fire on exactly this hit; 0 = every hit
    double delay_ms = 0.0;      ///< sleep per kDelay fire
    int shard = -1;             ///< only this shard's hits count; -1 = any
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };

  mutable Mutex mu_{LockRank::kFailpoint, "failpoint.registry"};
  std::vector<std::pair<std::string, Site>> sites_ TAR_GUARDED_BY(mu_);
  std::uint64_t seed_ TAR_GUARDED_BY(mu_) = 42;
  std::atomic<bool> enabled_{false};
};

/// Evaluates `site` and converts a fire into the matching error Status:
/// kError/kTornWrite/kBitFlip -> IoError, kAllocFail -> ResourceExhausted.
/// OK when the site does not fire. Use at sites that have no payload to
/// tear or flip.
Status InjectedFault(const char* site);

}  // namespace tar::fail

/// Hot-path guard: evaluates `site` and propagates an injected fault to
/// the caller. One relaxed atomic load when nothing is armed.
#define TAR_INJECT_FAULT(site)                                  \
  do {                                                          \
    if (::tar::fail::FaultInjector::Global().enabled()) {       \
      TAR_RETURN_NOT_OK(::tar::fail::InjectedFault(site));      \
    }                                                           \
  } while (false)
