#include "common/powerlaw.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tar {

double HurwitzZeta(double s, double a) {
  TAR_DCHECK(s > 1.0 && a > 0.0);
  // Direct sum over the first kTerms terms, Euler-Maclaurin for the tail:
  //   sum_{i>=N} (i+a)^-s ~= (N+a)^(1-s)/(s-1) + (N+a)^-s/2
  //                          + s*(N+a)^-(s+1)/12 - ...
  constexpr int kTerms = 1000;
  double sum = 0.0;
  for (int i = 0; i < kTerms; ++i) {
    sum += std::pow(i + a, -s);
  }
  const double base = kTerms + a;
  sum += std::pow(base, 1.0 - s) / (s - 1.0);
  sum += 0.5 * std::pow(base, -s);
  sum += s / 12.0 * std::pow(base, -s - 1.0);
  sum -= s * (s + 1.0) * (s + 2.0) / 720.0 * std::pow(base, -s - 3.0);
  return sum;
}

PowerLaw::PowerLaw(double beta, std::int64_t xmin)
    : beta_(beta), xmin_(xmin),
      zeta_xmin_(HurwitzZeta(beta, static_cast<double>(xmin))) {
  TAR_CHECK(xmin_ >= 1);
}

double PowerLaw::Pmf(std::int64_t x) const {
  if (x < xmin_) return 0.0;
  return std::pow(static_cast<double>(x), -beta_) / zeta_xmin_;
}

double PowerLaw::Ccdf(std::int64_t x) const {
  if (x <= xmin_) return 1.0;
  return HurwitzZeta(beta_, static_cast<double>(x)) / zeta_xmin_;
}

std::int64_t PowerLaw::Sample(Rng& rng) const {
  // Continuous approximation (CSN appendix D): accurate for xmin >= 1 and
  // exact in distribution shape for the tails we generate.
  double r = rng.Uniform();
  // Guard against r == 1 which would map to xmin - 1.
  r = std::min(r, 1.0 - 1e-12);
  double x = (static_cast<double>(xmin_) - 0.5) *
                 std::pow(1.0 - r, -1.0 / (beta_ - 1.0)) +
             0.5;
  if (x > 9.0e18) x = 9.0e18;  // clamp pathological draws at tiny beta
  return static_cast<std::int64_t>(std::floor(x));
}

namespace {

/// Negative log-likelihood of the tail under beta (xmin fixed):
///   n*ln zeta(beta, xmin) + beta * sum ln x_i.
double NegLogLikelihood(double beta, std::int64_t xmin, std::size_t n,
                        double sum_log_x) {
  return static_cast<double>(n) *
             std::log(HurwitzZeta(beta, static_cast<double>(xmin))) +
         beta * sum_log_x;
}

}  // namespace

double FitBetaGivenXmin(const std::vector<std::int64_t>& sorted_tail,
                        std::int64_t xmin, double beta_lo, double beta_hi) {
  double sum_log_x = 0.0;
  for (std::int64_t x : sorted_tail) {
    sum_log_x += std::log(static_cast<double>(x));
  }
  const std::size_t n = sorted_tail.size();
  // Golden-section minimization of the negative log-likelihood; the
  // likelihood is unimodal in beta.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = beta_lo;
  double b = beta_hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = NegLogLikelihood(c, xmin, n, sum_log_x);
  double fd = NegLogLikelihood(d, xmin, n, sum_log_x);
  while (b - a > 1e-5) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = NegLogLikelihood(c, xmin, n, sum_log_x);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = NegLogLikelihood(d, xmin, n, sum_log_x);
    }
  }
  return (a + b) / 2.0;
}

double KsDistance(const std::vector<std::int64_t>& sorted_tail,
                  const PowerLaw& model) {
  // Walk the distinct values; empirical CDF steps at each, model CDF
  // computed incrementally via zeta(b, x+1) = zeta(b, x) - x^-b.
  const std::size_t n = sorted_tail.size();
  if (n == 0) return 1.0;
  double zeta_xmin = HurwitzZeta(model.beta(),
                                 static_cast<double>(model.xmin()));
  double zeta_x = zeta_xmin;  // zeta at current x (starts at xmin)
  std::int64_t x = model.xmin();
  double max_diff = 0.0;
  std::size_t i = 0;
  while (i < n) {
    // Advance the model CCDF to the current data value.
    while (x < sorted_tail[i]) {
      zeta_x -= std::pow(static_cast<double>(x), -model.beta());
      ++x;
    }
    std::size_t j = i;
    while (j < n && sorted_tail[j] == sorted_tail[i]) ++j;
    // Empirical CDF just below x and at x; model CDF on [x, x+1).
    double emp_lo = static_cast<double>(i) / n;
    double emp_hi = static_cast<double>(j) / n;
    double model_cdf_below = 1.0 - zeta_x / zeta_xmin;  // Pr(X < x)
    double model_cdf_at =
        1.0 - (zeta_x - std::pow(static_cast<double>(x), -model.beta())) /
                  zeta_xmin;  // Pr(X <= x)
    max_diff = std::max(max_diff, std::abs(emp_lo - model_cdf_below));
    max_diff = std::max(max_diff, std::abs(emp_hi - model_cdf_at));
    i = j;
  }
  return max_diff;
}

PowerLawFit FitPowerLaw(const std::vector<std::int64_t>& data,
                        const PowerLawFitOptions& options) {
  PowerLawFit best;
  best.ks = 2.0;
  if (data.empty()) return best;

  std::vector<std::int64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());

  // Candidate xmins: the distinct data values, smallest first, keeping a
  // usable tail and capping the candidate count for large inputs.
  std::vector<std::int64_t> candidates;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] < 1) continue;
    if (i > 0 && sorted[i] == sorted[i - 1]) continue;
    if (sorted.size() - i < options.min_tail_size) break;
    candidates.push_back(sorted[i]);
    if (candidates.size() >= options.max_xmin_candidates) break;
  }
  if (candidates.empty() && !sorted.empty() && sorted.back() >= 1) {
    candidates.push_back(std::max<std::int64_t>(sorted.front(), 1));
  }

  for (std::int64_t xmin : candidates) {
    auto first =
        std::lower_bound(sorted.begin(), sorted.end(), xmin);
    std::vector<std::int64_t> tail(first, sorted.end());
    if (tail.empty()) continue;
    double beta =
        FitBetaGivenXmin(tail, xmin, options.beta_lo, options.beta_hi);
    PowerLaw model(beta, xmin);
    double ks = KsDistance(tail, model);
    if (ks < best.ks) {
      best.beta = beta;
      best.xmin = xmin;
      best.ks = ks;
      best.n_tail = tail.size();
      double sum_log_x = 0.0;
      for (std::int64_t x : tail) sum_log_x += std::log((double)x);
      best.log_likelihood =
          -NegLogLikelihood(beta, xmin, tail.size(), sum_log_x);
    }
  }
  return best;
}

double PowerLawPValue(const std::vector<std::int64_t>& data,
                      const PowerLawFit& fit, std::size_t num_reps, Rng& rng,
                      const PowerLawFitOptions& options) {
  if (data.empty() || num_reps == 0) return 0.0;
  // Split the data into body (< xmin) and tail (>= xmin).
  std::vector<std::int64_t> body;
  std::size_t n_tail = 0;
  for (std::int64_t x : data) {
    if (x < fit.xmin) {
      body.push_back(x);
    } else {
      ++n_tail;
    }
  }
  const std::size_t n = data.size();
  const double tail_prob = static_cast<double>(n_tail) / n;
  PowerLaw model(fit.beta, fit.xmin);

  std::size_t exceed = 0;
  std::vector<std::int64_t> synth(n);
  for (std::size_t rep = 0; rep < num_reps; ++rep) {
    for (std::size_t i = 0; i < n; ++i) {
      if (body.empty() || rng.Uniform() < tail_prob) {
        synth[i] = model.Sample(rng);
      } else {
        synth[i] = body[static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(body.size()) - 1))];
      }
    }
    PowerLawFit synth_fit = FitPowerLaw(synth, options);
    if (synth_fit.ks >= fit.ks) ++exceed;
  }
  return static_cast<double>(exceed) / num_reps;
}

}  // namespace tar
