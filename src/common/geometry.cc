#include "common/geometry.h"

#include <cstdio>

namespace tar {

double Distance(const Vec2& a, const Vec2& b) {
  // sqrt of the squared sum (not std::hypot) so that scores computed here
  // and through BoxN::MinDist2 agree bit-for-bit on degenerate point boxes.
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

double MinDistToBox(const Vec2& q, const Box3& b) {
  return std::sqrt(b.MinDist2({q.x, q.y, 0.0}, /*dims=*/2));
}

Box3 PointBox(const Vec2& p, double z) {
  return Box3::FromPoint({p.x, p.y, z});
}

std::string ToString(const Box2& b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.4g,%.4g]x[%.4g,%.4g]", b.lo[0], b.hi[0],
                b.lo[1], b.hi[1]);
  return buf;
}

std::string ToString(const Box3& b) {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "[%.4g,%.4g]x[%.4g,%.4g]x[%.4g,%.4g]",
                b.lo[0], b.hi[0], b.lo[1], b.hi[1], b.lo[2], b.hi[2]);
  return buf;
}

}  // namespace tar
