// Arrow/RocksDB-style status object for error handling without exceptions.
#pragma once

#include <string>
#include <utility>

namespace tar {

/// \brief Outcome of an operation that can fail.
///
/// Core library code returns Status (or Result<T>) instead of throwing.
/// A default-constructed Status is OK. The error message is stored only for
/// non-OK statuses, keeping the OK path allocation free.
///
/// [[nodiscard]]: silently dropping a Status is how index corruption turns
/// into plausible-but-wrong aggregates; every caller must consume it
/// (propagate, branch, or TAR_CHECK_OK).
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kCorruption,
    kNotSupported,
    kResourceExhausted,
    kAlreadyExists,
    kIoError,
    kDeadlineExceeded,
    kCancelled,
    kUnavailable,
    kFailedPrecondition,
  };

  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsDeadlineExceeded() const {
    return code_ == Code::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == Code::kCancelled; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsFailedPrecondition() const {
    return code_ == Code::kFailedPrecondition;
  }

  const std::string& message() const { return msg_; }

  /// Same code with `context` prefixed onto the message — for adding
  /// structural context (a node path, a section name) while propagating.
  /// OK statuses pass through untouched.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + msg_);
  }

  /// Human-readable "<code>: <message>" string.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_ = Code::kOk;
  std::string msg_;
};

/// Name of a status code ("Corruption", "IoError", ...), for reports that
/// bucket failures by code.
const char* StatusCodeName(Status::Code code);

/// Propagate a non-OK status to the caller.
#define TAR_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::tar::Status _st = (expr);            \
    if (!_st.ok()) return _st;             \
  } while (false)

}  // namespace tar
