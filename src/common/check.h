// Assertion macros for invariant enforcement at mutation boundaries.
//
// Policy (see docs/internals.md, "Invariants and verification"):
//   * TAR_CHECK / TAR_CHECK_OK are always on, in every build type. Use them
//     where continuing past a violated precondition would corrupt an index
//     or silently produce wrong aggregates (constructor parameter sanity,
//     serialization framing, unreachable dispatch arms).
//   * TAR_DCHECK / TAR_DCHECK_OK compile away in NDEBUG builds. Use them on
//     hot paths for conditions that the structure verifier or the checked
//     callers already guarantee; they exist so sanitizer/debug CI runs stop
//     at the first broken invariant instead of at the downstream symptom.
//
// Both abort via std::abort so that ASan/UBSan produce a stack trace and a
// core dump rather than unwinding past the broken state.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace tar::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* kind, const char* expr,
                                     const char* detail = nullptr) {
  if (detail != nullptr) {
    std::fprintf(stderr, "%s:%d: %s failed: %s (%s)\n", file, line, kind,
                 expr, detail);
  } else {
    std::fprintf(stderr, "%s:%d: %s failed: %s\n", file, line, kind, expr);
  }
  std::fflush(stderr);
  std::abort();
}

inline void CheckOkImpl(const Status& st, const char* file, int line,
                        const char* kind, const char* expr) {
  if (!st.ok()) {
    CheckFailed(file, line, kind, expr, st.ToString().c_str());
  }
}

}  // namespace tar::internal

/// Always-on assertion: aborts with file:line and the failed expression.
#define TAR_CHECK(cond)                                                  \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::tar::internal::CheckFailed(__FILE__, __LINE__, "TAR_CHECK",      \
                                   #cond);                               \
    }                                                                    \
  } while (false)

/// Always-on assertion that a Status expression evaluates to OK.
#define TAR_CHECK_OK(expr)                                               \
  ::tar::internal::CheckOkImpl((expr), __FILE__, __LINE__, "TAR_CHECK_OK", \
                               #expr)

#ifdef NDEBUG
#define TAR_DCHECK(cond) \
  do {                   \
  } while (false)
#define TAR_DCHECK_OK(expr)   \
  do {                        \
    (void)sizeof((expr).ok()); \
  } while (false)
#else
#define TAR_DCHECK(cond)                                                 \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::tar::internal::CheckFailed(__FILE__, __LINE__, "TAR_DCHECK",     \
                                   #cond);                               \
    }                                                                    \
  } while (false)
#define TAR_DCHECK_OK(expr)                                       \
  ::tar::internal::CheckOkImpl((expr), __FILE__, __LINE__,        \
                               "TAR_DCHECK_OK", #expr)
#endif
