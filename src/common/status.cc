#include "common/status.h"

namespace tar {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kCancelled:
      return "Cancelled";
    case Status::Code::kUnavailable:
      return "Unavailable";
    case Status::Code::kFailedPrecondition:
      return "FailedPrecondition";
  }
  return "Unknown";
}
}  // namespace

const char* StatusCodeName(Status::Code code) { return CodeName(code); }

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace tar
