// Result<T>: value-or-Status, the Arrow idiom for fallible producers.
#pragma once

#include <utility>
#include <variant>

#include "common/check.h"
#include "common/status.h"

namespace tar {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// Usage:
///   Result<Page*> r = pool.Fetch(id);
///   if (!r.ok()) return r.status();
///   Page* page = r.ValueOrDie();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    TAR_DCHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The failure status; Status::OK() if this holds a value.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    TAR_DCHECK(ok());
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    TAR_DCHECK(ok());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    TAR_DCHECK(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }

 private:
  std::variant<Status, T> repr_;
};

/// Assign the value of a Result expression or propagate its error.
#define TAR_ASSIGN_OR_RETURN(lhs, expr)              \
  auto _res_##__LINE__ = (expr);                     \
  if (!_res_##__LINE__.ok()) {                       \
    return _res_##__LINE__.status();                 \
  }                                                  \
  lhs = std::move(_res_##__LINE__).ValueOrDie()

}  // namespace tar
