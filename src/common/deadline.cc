#include "common/deadline.h"

#include <cstdio>

namespace tar {

void CancelToken::Cancel(std::string cause) {
  // First-wins publication: claim the cause slot, write the cause, then
  // release the flag. Readers acquire-load cancelled() before touching
  // cause_, so the string write happens-before any read.
  bool expected = false;
  if (cause_claimed_.compare_exchange_strong(expected, true,
                                             std::memory_order_relaxed)) {
    cause_ = std::move(cause);
    cancelled_.store(true, std::memory_order_release);
  }
}

std::string CancelToken::cause() const {
  if (!cancelled()) return "";
  return cause_;
}

QueryDeadline::QueryDeadline(const QueryBudget& budget,
                             const CancelToken* token)
    : token_(token),
      max_node_visits_(budget.max_node_visits),
      max_tia_page_reads_(budget.max_tia_page_reads) {
  if (budget.deadline_ms > 0.0) {
    has_deadline_ = true;
    deadline_ms_ = budget.deadline_ms;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        budget.deadline_ms));
  }
  armed_ = token_ != nullptr || has_deadline_ || !budget.Unlimited();
}

Status QueryDeadline::Poll() {
  if (!armed_) return Status::OK();
  if (token_ != nullptr && token_->cancelled()) {
    return Status::Cancelled(token_->cause());
  }
  if (max_node_visits_ != 0 && node_visits_ > max_node_visits_) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "node-visit budget exhausted (%llu visited, limit %llu)",
                  static_cast<unsigned long long>(node_visits_),
                  static_cast<unsigned long long>(max_node_visits_));
    return Status::DeadlineExceeded(buf);
  }
  if (max_tia_page_reads_ != 0 && tia_page_reads_ > max_tia_page_reads_) {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "TIA page-read budget exhausted (%llu read, limit %llu)",
                  static_cast<unsigned long long>(tia_page_reads_),
                  static_cast<unsigned long long>(max_tia_page_reads_));
    return Status::DeadlineExceeded(buf);
  }
  if (has_deadline_) {
    // Amortize the clock read: tight per-entry loops poll every
    // iteration but only pay for steady_clock::now() every
    // kClockStride-th call.
    if (polls_until_clock_ == 0) {
      polls_until_clock_ = kClockStride;
      TAR_RETURN_NOT_OK(CheckDeadlineNow());
    }
    --polls_until_clock_;
  }
  return Status::OK();
}

Status QueryDeadline::CheckDeadlineNow() {
  if (std::chrono::steady_clock::now() >= deadline_) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "query deadline exceeded (%.1f ms)",
                  deadline_ms_);
    return Status::DeadlineExceeded(buf);
  }
  return Status::OK();
}

}  // namespace tar
