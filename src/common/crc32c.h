// CRC-32C (Castagnoli) — the checksum guarding persistence format v2.
//
// Chosen over plain CRC-32 for its better error-detection properties on
// short messages and because it is what comparable storage systems
// (LevelDB/RocksDB sstables, ext4 metadata) use; a software table-driven
// implementation keeps the build dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tar {

/// Extends a running CRC-32C with `n` more bytes. Chainable:
/// `Crc32cExtend(Crc32cExtend(0, a, na), b, nb) == Crc32c(a+b)`.
std::uint32_t Crc32cExtend(std::uint32_t crc, const void* data,
                           std::size_t n);

/// CRC-32C of one contiguous buffer.
inline std::uint32_t Crc32c(const void* data, std::size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace tar
