// Query-level observability: a low-overhead metrics registry and per-query
// traces.
//
// The paper's evaluation currency is per-query cost (node accesses, CPU
// time; Figures 6-16), and the production north star adds latency
// percentiles and hit rates under concurrent load. This layer provides
// both without perturbing the measured system:
//
//   * MetricsRegistry — named counters, gauges and fixed-bucket latency
//     histograms (p50/p95/p99 extraction), all lock-free on the update
//     path, with JSON and human-readable exporters.
//   * QueryTrace — a per-query record of phase timings (context/gmax,
//     best-first search, TIA aggregates), per-phase node-access
//     breakdowns and heap push/pop counts.
//
// Overhead guarantee: collection is DISABLED by default. When disabled,
// every instrumented hot path costs exactly one relaxed atomic load plus
// one predictable branch (`if (MetricsEnabled())`), and no clock is read.
// The determinism test (tests/core/determinism_test.cc) pins that the
// disabled configuration is bit-identical to the pre-instrumentation
// build. Enabled collection adds relaxed atomic increments and, where a
// latency is recorded, two steady_clock reads; it never takes a lock on
// the hot path (the registry mutex guards only name -> metric resolution,
// which callers do once and cache).
//
// QueryTrace is thread-private by design: a trace belongs to one query on
// one thread, so tracing needs no synchronization at all. Registry metrics
// are shared and atomic, safe from any number of threads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/stats.h"
#include "common/thread_annotations.h"

namespace tar {

/// True when registry collection is on (off by default). One relaxed load.
bool MetricsEnabled();

/// Flips registry collection globally (e.g. `tartool stress` turns it on;
/// libraries never do). Safe to call from any thread.
void SetMetricsEnabled(bool enabled);

/// \brief A monotonically increasing event count.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// \brief A last-write-wins instantaneous value (e.g. resident pages).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Number of fixed histogram buckets. Bucket 0 holds [0, 1) microseconds;
/// bucket i >= 1 holds [2^(i-1), 2^i) microseconds; the last bucket is
/// open-ended. 2^46 us ~ 2.2 years, so real latencies never saturate.
constexpr std::size_t kLatencyBuckets = 48;

/// Bucket index of a latency in microseconds.
std::size_t LatencyBucketOf(double micros);

/// Inclusive-exclusive bounds [lo, hi) of a bucket, in microseconds.
double LatencyBucketLower(std::size_t bucket);
double LatencyBucketUpper(std::size_t bucket);

/// \brief A plain (non-atomic) latency distribution.
///
/// Used directly as a thread-private accumulator (each parallel-query
/// worker records into its own and the driver merges them) and as the
/// consistent snapshot type of the atomic LatencyHistogram.
struct LatencySnapshot {
  std::array<std::uint64_t, kLatencyBuckets> buckets{};
  std::uint64_t count = 0;
  double sum_micros = 0.0;
  double min_micros = 0.0;
  double max_micros = 0.0;

  void Record(double micros);

  /// Merges another distribution into this one (bucket-wise).
  LatencySnapshot& operator+=(const LatencySnapshot& o);

  double Mean() const {
    return count > 0 ? sum_micros / static_cast<double>(count) : 0.0;
  }

  /// Latency at quantile `q` in [0, 1] (0.5 = p50), linearly interpolated
  /// inside the containing bucket and clamped to the observed min/max, so
  /// the bucket granularity never reports a value outside the data range.
  double Percentile(double q) const;

  double P50() const { return Percentile(0.50); }
  double P95() const { return Percentile(0.95); }
  double P99() const { return Percentile(0.99); }

  /// {"count":...,"mean_us":...,"p50_us":...,...} (one JSON object).
  std::string ToJson() const;
};

/// \brief A latency histogram safe for concurrent recording.
class LatencyHistogram {
 public:
  void Record(double micros);
  LatencySnapshot Snapshot() const;
  void Reset();

 private:
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_nanos_{0};
  std::atomic<std::uint64_t> min_nanos_{UINT64_MAX};
  std::atomic<std::uint64_t> max_nanos_{0};
};

/// \brief Process-wide named metrics.
///
/// Resolution (GetCounter/GetGauge/GetHistogram) takes the registry mutex
/// and is meant to be done once per site and cached (the returned pointers
/// are stable for the registry's lifetime); updates through the returned
/// objects are lock-free.
class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed, so cached metric
  /// pointers stay valid during static teardown).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name) TAR_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) TAR_EXCLUDES(mu_);
  LatencyHistogram* GetHistogram(const std::string& name) TAR_EXCLUDES(mu_);

  /// Zeroes every registered metric (the metrics stay registered).
  void ResetAll() TAR_EXCLUDES(mu_);

  /// {"counters":{...},"gauges":{...},"histograms":{...}} — stable key
  /// order (sorted by name), parseable by any JSON tool.
  std::string ToJson() const TAR_EXCLUDES(mu_);

  /// Aligned human-readable dump, one metric per line.
  std::string ToText() const TAR_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{LockRank::kMetricsRegistry, "metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TAR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ TAR_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      TAR_GUARDED_BY(mu_);
};

/// \brief Per-query execution trace.
///
/// A trace is requested by passing a QueryTrace* to TarTree::Query (or the
/// MWA / collective entry points); it is filled regardless of the global
/// metrics flag, since the caller asked for this specific query. Each
/// phase carries its own wall time, node-access breakdown, heap traffic
/// and the time spent inside TIA aggregate computation.
///
/// Reconciliation invariant: when both a trace and an AccessStats* are
/// passed, the sum of the per-phase stats equals what the query added to
/// the caller's AccessStats — Totals().NodeAccesses() matches
/// AccessStats::NodeAccesses() exactly (tested in
/// tests/core/query_trace_test.cc).
struct QueryTrace {
  struct Phase {
    std::string name;
    double micros = 0.0;      ///< wall time of the phase
    double tia_micros = 0.0;  ///< time inside TIA aggregate computation
    std::uint64_t heap_pushes = 0;
    std::uint64_t heap_pops = 0;
    AccessStats stats;  ///< accesses charged during this phase
  };

  std::vector<Phase> phases;
  double total_micros = 0.0;
  std::size_t num_results = 0;

  /// Invoked (when set) with the phase name at every AddPhase call —
  /// i.e. at each phase transition of a traced query. Tracing is already
  /// a cold, caller-opted path, so the indirect call costs nothing on
  /// untraced queries; tests use it to trip a CancelToken at a chosen
  /// transition and probe the abort path of every query engine.
  std::function<void(const std::string&)> on_phase;

  Phase* AddPhase(std::string name);

  /// Sum of the per-phase access stats.
  AccessStats Totals() const;

  /// Sum of the per-phase TIA aggregate time.
  double TiaMicros() const;

  /// One JSON object with a "phases" array; parseable by any JSON tool.
  std::string ToJson() const;

  /// Aligned per-phase breakdown for terminals (tartool query --trace).
  std::string ToText() const;
};

}  // namespace tar
