// Clang Thread Safety Analysis annotations (Abseil/LevelDB style).
//
// These macros make the locking discipline a compile-time property: a
// shared member is declared `TAR_GUARDED_BY(mu_)`, an internal helper that
// assumes the latch is held is declared `TAR_REQUIRES(mu_)`, and under
// Clang `-Wthread-safety -Werror` (the `werror` preset in CI) any access
// that cannot prove the capability is held is a build error, not a code
// review comment. Under compilers without the attributes (GCC) every macro
// expands to nothing, so the annotations are documentation there and the
// runtime behavior is identical everywhere.
//
// Conventions (see docs/internals.md, "Threading model"):
//   * Latches are leaf-level and never held across calls into another
//     module, except that a BufferPool shard latch may be held while
//     acquiring the PageFile latch (that order, never the reverse).
//   * Multi-latch paths acquire shard latches in ascending index order and
//     are marked TAR_NO_THREAD_SAFETY_ANALYSIS with a comment, since the
//     analysis cannot follow loops that accumulate locks.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define TAR_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define TAR_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a capability (a lockable resource), e.g.
/// `class TAR_CAPABILITY("mutex") Mutex { ... };`
#define TAR_CAPABILITY(x) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose lifetime equals a critical section.
#define TAR_SCOPED_CAPABILITY \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define TAR_GUARDED_BY(x) TAR_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Declares that the data pointed to by a pointer member is protected.
#define TAR_PT_GUARDED_BY(x) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// The calling thread must hold the capability exclusively.
#define TAR_REQUIRES(...) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// The calling thread must hold the capability at least shared.
#define TAR_REQUIRES_SHARED(...) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability exclusively and does not release it.
#define TAR_ACQUIRE(...) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The function acquires the capability shared and does not release it.
#define TAR_ACQUIRE_SHARED(...) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// The function attempts to acquire the capability without blocking and
/// returns `ret` (usually true) on success, e.g.
/// `bool TryLock() TAR_TRY_ACQUIRE(true);`
#define TAR_TRY_ACQUIRE(ret, ...) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(                                      \
      try_acquire_capability(ret __VA_OPT__(, ) __VA_ARGS__))

/// The function releases the capability (exclusive or shared).
#define TAR_RELEASE(...) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define TAR_RELEASE_SHARED(...) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The function may not be called while holding the capability
/// (non-reentrancy / deadlock prevention).
#define TAR_EXCLUDES(...) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held, teaching the analysis
/// it is held from here on.
#define TAR_ASSERT_CAPABILITY(x) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the given capability.
#define TAR_RETURN_CAPABILITY(x) \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Opts one function out of the analysis. Every use must carry a comment
/// explaining why the discipline cannot be expressed (typically a loop
/// acquiring the full shard array in ascending order).
#define TAR_NO_THREAD_SAFETY_ANALYSIS \
  TAR_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)
