#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tar {

namespace {

std::atomic<bool> g_metrics_enabled{false};

/// Fixed-point helpers for the atomic histogram: durations are carried as
/// integer nanoseconds so min/max/sum can use plain atomics.
std::uint64_t ToNanos(double micros) {
  if (micros <= 0.0) return 0;
  return static_cast<std::uint64_t>(micros * 1e3);
}

double ToMicros(std::uint64_t nanos) {
  return static_cast<double>(nanos) / 1e3;
}

void AtomicMin(std::atomic<std::uint64_t>* target, std::uint64_t v) {
  std::uint64_t cur = target->load(std::memory_order_relaxed);
  while (v < cur && !target->compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<std::uint64_t>* target, std::uint64_t v) {
  std::uint64_t cur = target->load(std::memory_order_relaxed);
  while (v > cur && !target->compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// Escapes a metric name for use as a JSON key. Names are plain
/// dotted identifiers in practice; quotes and backslashes are escaped so
/// the output is valid JSON for any input.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

std::size_t LatencyBucketOf(double micros) {
  if (micros < 1.0) return 0;
  // Bucket i >= 1 covers [2^(i-1), 2^i) us.
  std::size_t bucket = 1;
  double upper = 2.0;
  while (bucket + 1 < kLatencyBuckets && micros >= upper) {
    upper *= 2.0;
    ++bucket;
  }
  return bucket;
}

double LatencyBucketLower(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 1);
}

double LatencyBucketUpper(std::size_t bucket) {
  return std::ldexp(1.0, static_cast<int>(bucket));
}

void LatencySnapshot::Record(double micros) {
  if (micros < 0.0) micros = 0.0;
  ++buckets[LatencyBucketOf(micros)];
  if (count == 0 || micros < min_micros) min_micros = micros;
  if (micros > max_micros) max_micros = micros;
  ++count;
  sum_micros += micros;
}

LatencySnapshot& LatencySnapshot::operator+=(const LatencySnapshot& o) {
  if (o.count == 0) return *this;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    buckets[i] += o.buckets[i];
  }
  if (count == 0 || o.min_micros < min_micros) min_micros = o.min_micros;
  max_micros = std::max(max_micros, o.max_micros);
  count += o.count;
  sum_micros += o.sum_micros;
  return *this;
}

double LatencySnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile (1-based, nearest-rank rounded up).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] >= rank) {
      // Interpolate linearly inside the bucket by the rank's position
      // among the bucket's samples.
      const double lo = LatencyBucketLower(i);
      const double hi = LatencyBucketUpper(i);
      const double within = (static_cast<double>(rank - seen) - 0.5) /
                            static_cast<double>(buckets[i]);
      const double value = lo + (hi - lo) * within;
      return std::clamp(value, min_micros, max_micros);
    }
    seen += buckets[i];
  }
  return max_micros;
}

std::string LatencySnapshot::ToJson() const {
  std::string out = "{";
  out += "\"count\":" + std::to_string(count);
  out += ",\"mean_us\":" + FormatDouble(Mean());
  out += ",\"min_us\":" + FormatDouble(min_micros);
  out += ",\"p50_us\":" + FormatDouble(P50());
  out += ",\"p95_us\":" + FormatDouble(P95());
  out += ",\"p99_us\":" + FormatDouble(P99());
  out += ",\"max_us\":" + FormatDouble(max_micros);
  out += "}";
  return out;
}

void LatencyHistogram::Record(double micros) {
  if (micros < 0.0) micros = 0.0;
  buckets_[LatencyBucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t nanos = ToNanos(micros);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  AtomicMin(&min_nanos_, nanos);
  AtomicMax(&max_nanos_, nanos);
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  LatencySnapshot snap;
  for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_micros = ToMicros(sum_nanos_.load(std::memory_order_relaxed));
  const std::uint64_t min_nanos =
      min_nanos_.load(std::memory_order_relaxed);
  snap.min_micros = min_nanos == UINT64_MAX ? 0.0 : ToMicros(min_nanos);
  snap.max_micros = ToMicros(max_nanos_.load(std::memory_order_relaxed));
  return snap;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  min_nanos_.store(UINT64_MAX, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + h->Snapshot().ToJson();
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToText() const {
  MutexLock lock(&mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%-36s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%-36s %lld\n", name.c_str(),
                  static_cast<long long>(g->value()));
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    const LatencySnapshot snap = h->Snapshot();
    std::snprintf(buf, sizeof(buf),
                  "%-36s n=%llu mean=%.1fus p50=%.1fus p95=%.1fus "
                  "p99=%.1fus max=%.1fus\n",
                  name.c_str(),
                  static_cast<unsigned long long>(snap.count), snap.Mean(),
                  snap.P50(), snap.P95(), snap.P99(), snap.max_micros);
    out += buf;
  }
  return out;
}

QueryTrace::Phase* QueryTrace::AddPhase(std::string name) {
  if (on_phase) on_phase(name);
  phases.emplace_back();
  phases.back().name = std::move(name);
  return &phases.back();
}

AccessStats QueryTrace::Totals() const {
  AccessStats total;
  for (const Phase& p : phases) total += p.stats;
  return total;
}

double QueryTrace::TiaMicros() const {
  double total = 0.0;
  for (const Phase& p : phases) total += p.tia_micros;
  return total;
}

std::string QueryTrace::ToJson() const {
  std::string out = "{\"total_us\":" + FormatDouble(total_micros);
  out += ",\"tia_us\":" + FormatDouble(TiaMicros());
  out += ",\"num_results\":" + std::to_string(num_results);
  const AccessStats totals = Totals();
  out += ",\"node_accesses\":" + std::to_string(totals.NodeAccesses());
  out += ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const Phase& p = phases[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(p.name) + "\"";
    out += ",\"us\":" + FormatDouble(p.micros);
    out += ",\"tia_us\":" + FormatDouble(p.tia_micros);
    out += ",\"heap_pushes\":" + std::to_string(p.heap_pushes);
    out += ",\"heap_pops\":" + std::to_string(p.heap_pops);
    out += ",\"rtree_node_reads\":" +
           std::to_string(p.stats.rtree_node_reads);
    out += ",\"tia_page_reads\":" + std::to_string(p.stats.tia_page_reads);
    out += ",\"tia_buffer_hits\":" +
           std::to_string(p.stats.tia_buffer_hits);
    out += ",\"entries_scanned\":" +
           std::to_string(p.stats.entries_scanned);
    out += ",\"aggregate_calls\":" +
           std::to_string(p.stats.aggregate_calls);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string QueryTrace::ToText() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "query trace: %.1f us total (%.1f us in TIA aggregates), "
                "%zu results\n",
                total_micros, TiaMicros(), num_results);
  out += buf;
  for (const Phase& p : phases) {
    std::snprintf(buf, sizeof(buf), "  %-16s %9.1f us  %s\n",
                  p.name.c_str(), p.micros, p.stats.ToString().c_str());
    out += buf;
    if (p.heap_pushes > 0 || p.heap_pops > 0) {
      std::snprintf(buf, sizeof(buf),
                    "  %-16s               heap_pushes=%llu heap_pops=%llu "
                    "tia=%.1f us\n",
                    "", static_cast<unsigned long long>(p.heap_pushes),
                    static_cast<unsigned long long>(p.heap_pops),
                    p.tia_micros);
      out += buf;
    }
  }
  const AccessStats totals = Totals();
  std::snprintf(buf, sizeof(buf), "  %-16s               %s\n", "total",
                totals.ToString().c_str());
  out += buf;
  return out;
}

}  // namespace tar
