// Planar / low-dimensional geometry primitives used by the TAR-tree.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>

namespace tar {

/// \brief A point in the plane (POI coordinates, query points).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Vec2&, const Vec2&) = default;
};

/// Euclidean distance between two points.
double Distance(const Vec2& a, const Vec2& b);

/// \brief Axis-aligned box in D dimensions, closed on both ends.
///
/// An "empty" box has lo > hi in every dimension and behaves as the identity
/// for Extend/Union. Dimension 0/1 are the spatial axes; dimension 2 (when
/// D = 3) is the normalized aggregate axis used by the integral-3D grouping
/// strategy.
template <std::size_t D>
struct BoxN {
  std::array<double, D> lo;
  std::array<double, D> hi;

  /// Constructs the empty box.
  BoxN() {
    lo.fill(std::numeric_limits<double>::infinity());
    hi.fill(-std::numeric_limits<double>::infinity());
  }

  static BoxN FromPoint(const std::array<double, D>& p) {
    BoxN b;
    b.lo = p;
    b.hi = p;
    return b;
  }

  bool empty() const { return lo[0] > hi[0]; }

  /// Grows this box to cover `other`.
  void Extend(const BoxN& other) {
    for (std::size_t i = 0; i < D; ++i) {
      lo[i] = std::min(lo[i], other.lo[i]);
      hi[i] = std::max(hi[i], other.hi[i]);
    }
  }

  /// The smallest box covering both arguments.
  static BoxN Union(const BoxN& a, const BoxN& b) {
    BoxN r = a;
    r.Extend(b);
    return r;
  }

  bool Contains(const BoxN& other) const {
    for (std::size_t i = 0; i < D; ++i) {
      if (other.lo[i] < lo[i] || other.hi[i] > hi[i]) return false;
    }
    return true;
  }

  bool Intersects(const BoxN& other) const {
    for (std::size_t i = 0; i < D; ++i) {
      if (other.hi[i] < lo[i] || other.lo[i] > hi[i]) return false;
    }
    return true;
  }

  double Extent(std::size_t dim) const {
    return empty() ? 0.0 : hi[dim] - lo[dim];
  }

  /// Product of extents over the dims in [0, dims).
  double Area(std::size_t dims = D) const;

  /// Sum of extents over the dims in [0, dims) (the R* "margin").
  double Margin(std::size_t dims = D) const;

  /// Area of the intersection with `other` over the dims in [0, dims).
  double OverlapArea(const BoxN& other, std::size_t dims = D) const;

  /// Center coordinate along `dim`.
  double Center(std::size_t dim) const { return (lo[dim] + hi[dim]) / 2.0; }

  /// Squared min distance from a point to this box over dims [0, dims).
  double MinDist2(const std::array<double, D>& p, std::size_t dims = D) const;

  friend bool operator==(const BoxN&, const BoxN&) = default;
};

template <std::size_t D>
double BoxN<D>::Area(std::size_t dims) const {
  if (empty()) return 0.0;
  double a = 1.0;
  for (std::size_t i = 0; i < dims; ++i) a *= (hi[i] - lo[i]);
  return a;
}

template <std::size_t D>
double BoxN<D>::Margin(std::size_t dims) const {
  if (empty()) return 0.0;
  double m = 0.0;
  for (std::size_t i = 0; i < dims; ++i) m += (hi[i] - lo[i]);
  return m;
}

template <std::size_t D>
double BoxN<D>::OverlapArea(const BoxN& other, std::size_t dims) const {
  if (empty() || other.empty()) return 0.0;
  double a = 1.0;
  for (std::size_t i = 0; i < dims; ++i) {
    double w = std::min(hi[i], other.hi[i]) - std::max(lo[i], other.lo[i]);
    if (w <= 0.0) return 0.0;
    a *= w;
  }
  return a;
}

template <std::size_t D>
double BoxN<D>::MinDist2(const std::array<double, D>& p,
                         std::size_t dims) const {
  double d2 = 0.0;
  for (std::size_t i = 0; i < dims; ++i) {
    double d = 0.0;
    if (p[i] < lo[i]) {
      d = lo[i] - p[i];
    } else if (p[i] > hi[i]) {
      d = p[i] - hi[i];
    }
    d2 += d * d;
  }
  return d2;
}

using Box2 = BoxN<2>;
using Box3 = BoxN<3>;

/// Min Euclidean distance from point q to the spatial (x, y) extent of `b`.
double MinDistToBox(const Vec2& q, const Box3& b);

/// Box covering a single 2-D point with a degenerate z-interval at `z`.
Box3 PointBox(const Vec2& p, double z);

std::string ToString(const Box2& b);
std::string ToString(const Box3& b);

}  // namespace tar
