#include "common/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace tar::fail {

namespace {

/// The compiled-in site catalog. Configure rejects anything else, so a
/// typo in TAR_FAILPOINTS fails loudly instead of silently never firing.
/// Keep in sync with docs/internals.md ("Failure model").
constexpr const char* kKnownSites[] = {
    "page_file.read",       // PageFile::ReadPage
    "page_file.write",      // PageFile::GetPageForWrite
    "page_file.alloc",      // PageFile::Allocate
    "buffer_pool.fetch",    // BufferPool::Fetch / FetchForWrite
    "persist.open",         // SaveToFile / LoadFromFile open
    "persist.write",        // one hit per persisted v2 section (torn/flip)
    "persist.read",         // one hit per deserialization read
    "persist.rename",       // the atomic rename step of SaveToFile
    "persist.load.reserve", // bulk allocations sized by a loaded count
    "wal.append",           // WalWriter::Append, before buffering
    "wal.sync",             // WalWriter::Sync flush / Truncate
    "wal.torn",             // WalWriter::Sync batch write (torn/flip)
};

/// splitmix64: the decision hash. Statelessly mixes (seed, site, hit).
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t HashString(const char* s) {
  // FNV-1a, enough to decorrelate site names.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (; *s != '\0'; ++s) {
    h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001B3ull;
  }
  return h;
}

/// Uniform double in [0, 1) from the top 53 bits of a hash.
double ToUnit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// The calling thread's shard scope (ScopedShard); -1 = no scope.
thread_local int tls_current_shard = -1;

Status ParseAction(const std::string& word, Action* action) {
  if (word == "err") {
    *action = Action::kError;
  } else if (word == "alloc") {
    *action = Action::kAllocFail;
  } else if (word == "torn") {
    *action = Action::kTornWrite;
  } else if (word == "flip") {
    *action = Action::kBitFlip;
  } else if (word == "delay") {
    *action = Action::kDelay;
  } else if (word == "off") {
    *action = Action::kOff;
  } else {
    return Status::InvalidArgument("failpoint spec: unknown action '" +
                                   word + "'");
  }
  return Status::OK();
}

}  // namespace

int CurrentShard() { return tls_current_shard; }

ScopedShard::ScopedShard(int shard) : prev_(tls_current_shard) {
  tls_current_shard = shard;
}

ScopedShard::~ScopedShard() { tls_current_shard = prev_; }

const char* ToString(Action action) {
  switch (action) {
    case Action::kOff:
      return "off";
    case Action::kError:
      return "err";
    case Action::kAllocFail:
      return "alloc";
    case Action::kTornWrite:
      return "torn";
    case Action::kBitFlip:
      return "flip";
    case Action::kDelay:
      return "delay";
  }
  return "?";
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("TAR_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    Status st = Configure(env);
    if (!st.ok()) {
      std::fprintf(stderr, "TAR_FAILPOINTS invalid: %s\n",
                   st.ToString().c_str());
      std::fflush(stderr);
      std::abort();  // a typo must not silently disarm the run
    }
  }
}

std::vector<std::string> FaultInjector::KnownSites() {
  return {std::begin(kKnownSites), std::end(kKnownSites)};
}

bool FaultInjector::IsKnownSite(const std::string& site) {
  for (const char* known : kKnownSites) {
    if (site == known) return true;
  }
  return false;
}

Status FaultInjector::Configure(const std::string& spec) {
  std::vector<std::pair<std::string, Site>> parsed;
  std::uint64_t seed = 42;
  if (const char* env_seed = std::getenv("TAR_FAILPOINTS_SEED")) {
    seed = std::strtoull(env_seed, nullptr, 10);
  }

  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    std::size_t b = entry.find_first_not_of(" \t");
    std::size_t e = entry.find_last_not_of(" \t");
    if (b == std::string::npos) continue;  // empty entry
    entry = entry.substr(b, e - b + 1);

    std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      return Status::InvalidArgument(
          "failpoint spec: expected site=action in '" + entry + "'");
    }
    std::string site = entry.substr(0, eq);
    std::string rhs = entry.substr(eq + 1);

    if (site == "seed") {
      char* parse_end = nullptr;
      seed = std::strtoull(rhs.c_str(), &parse_end, 10);
      if (parse_end == rhs.c_str() || *parse_end != '\0') {
        return Status::InvalidArgument("failpoint spec: bad seed '" + rhs +
                                       "'");
      }
      continue;
    }
    if (!IsKnownSite(site)) {
      return Status::InvalidArgument("failpoint spec: unknown site '" +
                                     site + "'");
    }

    Site armed;
    std::string action_word = rhs;
    std::vector<std::string> params;
    std::size_t at = rhs.find('@');
    if (at != std::string::npos) {
      action_word = rhs.substr(0, at);
      std::size_t start = at + 1;
      while (start <= rhs.size()) {
        std::size_t next = rhs.find('@', start);
        if (next == std::string::npos) {
          params.push_back(rhs.substr(start));
          break;
        }
        params.push_back(rhs.substr(start, next - start));
        start = next + 1;
      }
    }
    TAR_RETURN_NOT_OK(ParseAction(action_word, &armed.action));
    // The shard scope selector may appear anywhere in the parameter list;
    // pull it out first so the positional delay/selector rules below see
    // only their own parameters.
    for (std::size_t p = 0; p < params.size();) {
      if (params[p].rfind("shard:", 0) != 0) {
        ++p;
        continue;
      }
      if (armed.shard >= 0) {
        return Status::InvalidArgument(
            "failpoint spec: duplicate shard selector for site '" + site +
            "'");
      }
      const std::string index = params[p].substr(6);
      char* parse_end = nullptr;
      const long long value = std::strtoll(index.c_str(), &parse_end, 10);
      if (parse_end == index.c_str() || *parse_end != '\0' || value < 0) {
        return Status::InvalidArgument(
            "failpoint spec: bad shard selector '" + params[p] +
            "' for site '" + site + "' (expected shard:i with i >= 0)");
      }
      armed.shard = static_cast<int>(value);
      params.erase(params.begin() + static_cast<std::ptrdiff_t>(p));
    }
    auto parse_positive = [&site](const std::string& param,
                                  double* value) -> Status {
      char* parse_end = nullptr;
      *value = std::strtod(param.c_str(), &parse_end);
      if (parse_end == param.c_str() || *parse_end != '\0' || *value <= 0.0) {
        return Status::InvalidArgument("failpoint spec: bad parameter '" +
                                       param + "' for site '" + site + "'");
      }
      return Status::OK();
    };
    // `delay` consumes a leading milliseconds parameter; what is left (for
    // any action) is the optional probability/nth selector.
    std::size_t selector_at = 0;
    if (armed.action == Action::kDelay) {
      if (params.empty()) {
        return Status::InvalidArgument(
            "failpoint spec: delay needs a milliseconds parameter "
            "(site=delay@ms) for site '" +
            site + "'");
      }
      TAR_RETURN_NOT_OK(parse_positive(params[0], &armed.delay_ms));
      selector_at = 1;
    }
    if (params.size() > selector_at + 1) {
      return Status::InvalidArgument(
          "failpoint spec: too many parameters for site '" + site + "'");
    }
    if (params.size() == selector_at + 1) {
      double value = 0.0;
      TAR_RETURN_NOT_OK(parse_positive(params[selector_at], &value));
      if (value < 1.0) {
        armed.probability = value;
      } else {
        armed.nth = static_cast<std::uint64_t>(value);
      }
    }
    if (armed.action != Action::kOff) {
      parsed.emplace_back(std::move(site), armed);
    }
  }

  MutexLock lock(&mu_);
  sites_ = std::move(parsed);
  seed_ = seed;
  enabled_.store(!sites_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Clear() {
  MutexLock lock(&mu_);
  sites_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

FireResult FaultInjector::Hit(const char* site) {
  FireResult result;
  if (!enabled()) return result;
  {
    MutexLock lock(&mu_);
    for (auto& [name, armed] : sites_) {
      if (name != site) continue;
      // A shard-scoped site ignores (and does not tally) hits from other
      // shards or from unscoped code; scan on for another entry of the
      // same site armed for this shard.
      if (armed.shard >= 0 && armed.shard != tls_current_shard) continue;
      ++armed.hits;
      bool fires;
      if (armed.nth > 0) {
        fires = armed.hits == armed.nth;
      } else if (armed.probability >= 0.0) {
        fires = ToUnit(Mix(seed_ ^ HashString(site) ^ armed.hits)) <
                armed.probability;
      } else {
        fires = true;
      }
      if (fires) {
        ++armed.fires;
        result.action = armed.action;
        result.delay_ms = armed.delay_ms;
        result.seed = Mix(seed_ ^ HashString(site) ^ (armed.hits << 1) ^ 1u);
      }
      break;
    }
  }
  // The sleep runs after the registry latch is dropped so a slow-I/O
  // storm stalls only the threads that actually hit the delayed site.
  if (result.action == Action::kDelay && result.delay_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(result.delay_ms));
  }
  return result;
}

std::vector<SiteReport> FaultInjector::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<SiteReport> out;
  out.reserve(sites_.size());
  for (const auto& [name, armed] : sites_) {
    out.push_back(SiteReport{name, armed.action, armed.hits, armed.fires});
  }
  return out;
}

std::uint64_t FaultInjector::fires(const std::string& site) const {
  MutexLock lock(&mu_);
  for (const auto& [name, armed] : sites_) {
    if (name == site) return armed.fires;
  }
  return 0;
}

Status InjectedFault(const char* site) {
  switch (FaultInjector::Global().Hit(site).action) {
    case Action::kOff:
      return Status::OK();
    case Action::kAllocFail:
      return Status::ResourceExhausted(
          std::string("injected allocation failure at failpoint ") + site);
    case Action::kDelay:
      return Status::OK();  // the sleep already happened inside Hit
    case Action::kError:
    case Action::kTornWrite:  // no payload to tear here
    case Action::kBitFlip:    // no payload to flip here
      return Status::IoError(std::string("injected I/O error at failpoint ") +
                             site);
  }
  return Status::OK();
}

}  // namespace tar::fail
