// Cooperative cancellation, deadlines, and work budgets for query execution.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

namespace tar {

/// \brief Shared cancel flag with a first-wins cancellation cause.
///
/// One token may be observed by many queries (a whole parallel batch, a
/// server connection). Cancel() is lock free and idempotent: the first
/// caller wins the cause slot, later calls are no-ops. Readers poll
/// cancelled() (one acquire load) on their cooperative check points; the
/// cause string is published before the flag, so any reader that observes
/// cancelled() == true may safely read cause().
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation. Thread safe; the first call's cause sticks.
  void Cancel(std::string cause = "cancelled");

  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The first Cancel() call's cause; "" while not cancelled.
  std::string cause() const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> cause_claimed_{false};
  std::string cause_;
};

/// \brief Resource ceilings for one query. Zero means "unlimited".
///
/// `deadline_ms` is a wall-clock allowance measured from the moment a
/// QueryDeadline is armed (query execution start, not admission time).
/// The visit/page ceilings bound work even when the clock is unreliable
/// (sanitizer builds, single-stepped debuggers) and make budget trips
/// deterministic for tests.
struct QueryBudget {
  double deadline_ms = 0.0;
  std::uint64_t max_node_visits = 0;
  std::uint64_t max_tia_page_reads = 0;

  bool Unlimited() const {
    return deadline_ms <= 0.0 && max_node_visits == 0 &&
           max_tia_page_reads == 0;
  }
};

/// \brief Degradation label for an opt-in partial result.
///
/// When a deadline/cancel/budget trip cuts a best-first search whose
/// caller passed `allow_partial`, the query returns OK with the top-k
/// prefix found so far and stamps this struct:
///   - `completed == false`, `cause` holds the would-be abort status;
///   - every returned result is exact (identical to the full answer's
///     prefix), and every POI *not* returned scores >= `score_bound`.
/// The bound is the minimum score in the best-first frontier at the cut;
/// Property 1 (consistent bounds) makes it sound. A query that runs to
/// completion leaves the defaults (`completed == true`, bound = +inf).
struct PartialResult {
  bool completed = true;
  double score_bound = std::numeric_limits<double>::infinity();
  Status cause;
};

/// \brief Per-query cooperative checkpoint state: cancel token + armed
/// wall-clock deadline + work counters.
///
/// Threaded as an optional `QueryDeadline*` (nullptr = unlimited, zero
/// overhead beyond one pointer test per poll site) through the query
/// paths. Not thread safe: one instance belongs to one executing query.
/// Poll() is the cooperative check: the cancel flag and integer ceilings
/// are tested every call, the clock only every kClockStride polls so
/// tight loops stay cheap and release-bench numbers stay flat with
/// deadlines disabled.
class QueryDeadline {
 public:
  /// Unarmed: Poll() always returns OK (still counts work).
  QueryDeadline() = default;

  /// Arms `budget` (deadline measured from now) and optionally observes
  /// `token`. Either may be empty/null.
  explicit QueryDeadline(const QueryBudget& budget,
                         const CancelToken* token = nullptr);

  /// Cooperative check point. Returns kCancelled if the token fired,
  /// kDeadlineExceeded if the wall clock or a work ceiling is exhausted,
  /// OK otherwise.
  Status Poll();

  /// Poll() plus one node-visit charge (call when expanding a tree node).
  Status PollNode() {
    ++node_visits_;
    return Poll();
  }

  /// Charge `n` TIA page reads against the budget (checked by the next
  /// Poll together with this call).
  void ChargeTiaPages(std::uint64_t n) { tia_page_reads_ += n; }

  /// True when any ceiling/deadline/token is attached (used to decide
  /// whether page-read accounting needs a scratch AccessStats).
  bool armed() const { return armed_; }
  bool wants_tia_accounting() const { return max_tia_page_reads_ > 0; }

  std::uint64_t node_visits() const { return node_visits_; }
  std::uint64_t tia_page_reads() const { return tia_page_reads_; }

 private:
  Status CheckDeadlineNow();

  const CancelToken* token_ = nullptr;
  bool armed_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  double deadline_ms_ = 0.0;
  std::uint64_t max_node_visits_ = 0;
  std::uint64_t max_tia_page_reads_ = 0;
  std::uint64_t node_visits_ = 0;
  std::uint64_t tia_page_reads_ = 0;
  std::uint32_t polls_until_clock_ = 0;

  static constexpr std::uint32_t kClockStride = 64;
};

/// Cooperative check point for functions that return Status (or Result):
/// propagates a deadline/cancel trip to the caller. `deadline` is a
/// `QueryDeadline*` and may be null.
#define TAR_CHECK_CANCEL(deadline)              \
  do {                                          \
    if ((deadline) != nullptr) {                \
      TAR_RETURN_NOT_OK((deadline)->Poll());    \
    }                                           \
  } while (false)

/// Check point for loops that must not return directly (a phase's stats
/// still have to be folded into the caller's totals): folds the poll
/// outcome into `st` instead. No-op once `st` is already non-OK.
#define TAR_CHECK_CANCEL_TO(deadline, st)                  \
  do {                                                     \
    if ((deadline) != nullptr && (st).ok()) {              \
      (st) = (deadline)->Poll();                           \
    }                                                      \
  } while (false)

}  // namespace tar
