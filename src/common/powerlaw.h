// Discrete power-law toolkit (Clauset, Shalizi & Newman, SIAM Review 2009).
//
// Section 6.1 of the paper models the count aggregate X of a POI as
//   Pr(X = x) = x^-beta / zeta(beta, xmin),   x >= xmin,
// and Table 2 reports the fitted (beta, xmin, p-value) per data set. This
// module provides: the Hurwitz zeta function, maximum-likelihood fitting
// with KS-minimizing xmin selection, a semiparametric bootstrap p-value,
// and a power-law sampler used by the synthetic LBSN generator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace tar {

/// Hurwitz zeta function zeta(s, a) = sum_{i>=0} (i + a)^-s for s > 1,
/// a > 0. Computed by direct summation plus an Euler-Maclaurin tail.
double HurwitzZeta(double s, double a);

/// \brief A fitted discrete power law.
struct PowerLawFit {
  double beta = 0.0;      ///< scaling parameter (beta-hat)
  std::int64_t xmin = 1;  ///< lower bound of power-law behaviour (xmin-hat)
  double ks = 0.0;        ///< KS distance of the tail at (beta, xmin)
  std::size_t n_tail = 0; ///< sample count with x >= xmin
  double log_likelihood = 0.0;
};

/// \brief Discrete power-law model with fixed parameters.
class PowerLaw {
 public:
  PowerLaw(double beta, std::int64_t xmin);

  double beta() const { return beta_; }
  std::int64_t xmin() const { return xmin_; }

  /// Pr(X = x); zero below xmin.
  double Pmf(std::int64_t x) const;

  /// Pr(X >= x); one at or below xmin.
  double Ccdf(std::int64_t x) const;

  /// Draws one sample (Clauset appendix D continuous approximation).
  std::int64_t Sample(Rng& rng) const;

 private:
  double beta_;
  std::int64_t xmin_;
  double zeta_xmin_;  // zeta(beta, xmin), the normalization constant
};

/// Options controlling the fit.
struct PowerLawFitOptions {
  /// Try at most this many distinct candidate xmin values (smallest first).
  std::size_t max_xmin_candidates = 200;
  /// Require at least this many tail samples for a candidate xmin.
  std::size_t min_tail_size = 10;
  /// Search range for beta.
  double beta_lo = 1.01;
  double beta_hi = 6.0;
};

/// \brief MLE fit of a discrete power law to positive integer data.
///
/// xmin is chosen to minimize the KS distance between the model and the
/// empirical tail distribution (the CSN recipe). `data` need not be sorted.
PowerLawFit FitPowerLaw(const std::vector<std::int64_t>& data,
                        const PowerLawFitOptions& options = {});

/// MLE for beta with xmin fixed.
double FitBetaGivenXmin(const std::vector<std::int64_t>& sorted_tail,
                        std::int64_t xmin, double beta_lo = 1.01,
                        double beta_hi = 6.0);

/// KS distance between a fitted model and the empirical tail (x >= xmin).
double KsDistance(const std::vector<std::int64_t>& sorted_tail,
                  const PowerLaw& model);

/// \brief Goodness-of-fit p-value via the CSN semiparametric bootstrap.
///
/// Generates `num_reps` synthetic data sets that follow the fitted model in
/// the tail and resample the empirical body below xmin, refits each, and
/// returns the fraction whose KS distance exceeds the observed one. The
/// power-law hypothesis is ruled out when p <= 0.1.
double PowerLawPValue(const std::vector<std::int64_t>& data,
                      const PowerLawFit& fit, std::size_t num_reps, Rng& rng,
                      const PowerLawFitOptions& options = {});

}  // namespace tar
