// Annotated, ranked mutex wrappers: std::mutex with Clang Thread Safety
// Analysis capability attributes, a position in the repo-wide latch
// hierarchy, and the RAII guard the rest of the codebase uses.
//
// std::mutex itself carries no capability annotations, so locking it never
// satisfies a TAR_GUARDED_BY/TAR_REQUIRES contract; these thin wrappers
// give the analysis the acquire/release facts it needs. On top of that,
// every Mutex is constructed with a LockRank and a name
// (src/common/lock_rank.h is the rank table): debug builds maintain a
// per-thread held-lock stack and a global acquisition-order graph
// (src/analysis/lock_order.h) and fail at acquire time — with lock names
// and acquisition sites — on a rank inversion, a self-deadlock, or a
// cross-thread acquisition-order cycle. Release builds (NDEBUG) compile
// all of it out: Mutex is exactly a std::mutex again, with no extra
// state, branches, or stores.
#pragma once

#include <mutex>
#include <source_location>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

// Debug lock-order checking. Off under NDEBUG (release/bench builds pay
// nothing); define TAR_NO_LOCK_ORDER to switch it off in a debug build
// (e.g. to isolate a sanitizer report from detector frames).
#if !defined(NDEBUG) && !defined(TAR_NO_LOCK_ORDER)
#define TAR_LOCK_ORDER_CHECKS 1
#include "analysis/lock_order.h"
#else
#define TAR_LOCK_ORDER_CHECKS 0
#endif

namespace tar {

/// \brief An annotated, ranked exclusive mutex (a "latch" in
/// storage-engine terms).
class TAR_CAPABILITY("mutex") Mutex {
 public:
  /// Every Mutex declares its place in the latch hierarchy and a
  /// diagnostic name (a string literal; violation reports print it).
  /// tar-lint rejects a Mutex declaration without them.
#if TAR_LOCK_ORDER_CHECKS
  explicit Mutex(LockRank rank, const char* name)
      : rank_(LockRankValue(rank)),
        name_(name),
        seq_(lockorder::RegisterMutex()) {}
#else
  explicit Mutex(LockRank /*rank*/, const char* /*name*/) {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(std::source_location loc = std::source_location::current())
      TAR_ACQUIRE() {
#if TAR_LOCK_ORDER_CHECKS
    lockorder::OnAcquire(this, rank_, seq_, name_, loc.file_name(),
                         loc.line(), /*try_lock=*/false);
#else
    (void)loc;
#endif
    mu_.lock();
  }

  void Unlock() TAR_RELEASE() {
#if TAR_LOCK_ORDER_CHECKS
    lockorder::OnRelease(this);
#endif
    mu_.unlock();
  }

  /// Non-blocking acquisition. Exempt from the rank check (a failed
  /// try_lock cannot block, so it cannot complete a deadlock), but a
  /// successfully acquired mutex still counts as held for every later
  /// acquisition and for AssertHeld.
  bool TryLock(std::source_location loc = std::source_location::current())
      TAR_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#if TAR_LOCK_ORDER_CHECKS
    if (acquired) {
      lockorder::OnAcquire(this, rank_, seq_, name_, loc.file_name(),
                           loc.line(), /*try_lock=*/true);
    }
#else
    (void)loc;
#endif
    return acquired;
  }

  /// Debug-checked claim that the calling thread holds this mutex; a
  /// no-op in release builds. Also teaches the static analysis that the
  /// capability is held from here on, so internal helpers can assert
  /// their latch contract instead of relying on comments.
  void AssertHeld() const TAR_ASSERT_CAPABILITY(this) {
#if TAR_LOCK_ORDER_CHECKS
    lockorder::AssertHeld(this, name_);
#endif
  }

#if TAR_LOCK_ORDER_CHECKS
  std::uint32_t rank() const { return rank_; }
  const char* name() const { return name_; }
#endif

 private:
  std::mutex mu_;
#if TAR_LOCK_ORDER_CHECKS
  std::uint32_t rank_;
  const char* name_;
  std::uint64_t seq_;
#endif
};

/// \brief Scoped lock guard; the only way code should hold a Mutex.
///
/// Declared TAR_SCOPED_CAPABILITY so the analysis knows the capability is
/// held exactly for the guard's lifetime:
///
///   MutexLock lock(&shard.mu);
///   shard.caches.clear();   // OK: caches is TAR_GUARDED_BY(mu)
///
/// The defaulted source_location captures the *call site*, so lock-order
/// violation reports name the line that took the latch, not this header.
class TAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu, std::source_location loc =
                                    std::source_location::current())
      TAR_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock(loc);
  }
  ~MutexLock() TAR_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace tar
