// Annotated mutex wrappers: std::mutex with Clang Thread Safety Analysis
// capability attributes, plus the RAII guard the rest of the codebase uses.
//
// std::mutex itself carries no capability annotations, so locking it never
// satisfies a TAR_GUARDED_BY/TAR_REQUIRES contract; these thin wrappers do
// nothing at runtime beyond the underlying mutex but give the analysis the
// acquire/release facts it needs.
#pragma once

#include <mutex>

#include "common/thread_annotations.h"

namespace tar {

/// \brief An annotated exclusive mutex (a "latch" in storage-engine terms).
class TAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TAR_ACQUIRE() { mu_.lock(); }
  void Unlock() TAR_RELEASE() { mu_.unlock(); }
  bool TryLock() TAR_THREAD_ANNOTATION_ATTRIBUTE__(
      try_acquire_capability(true)) {
    return mu_.try_lock();
  }

 private:
  std::mutex mu_;
};

/// \brief Scoped lock guard; the only way code should hold a Mutex.
///
/// Declared TAR_SCOPED_CAPABILITY so the analysis knows the capability is
/// held exactly for the guard's lifetime:
///
///   MutexLock lock(&shard.mu);
///   shard.caches.clear();   // OK: caches is TAR_GUARDED_BY(mu)
class TAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TAR_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() TAR_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace tar
