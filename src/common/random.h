// Deterministic RNG wrapper so experiments are reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace tar {

/// \brief Seedable random source used by generators, workloads and tests.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : gen_(seed) {}

  double Uniform() { return uni_(gen_); }
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  double Exponential(double rate) {
    return std::exponential_distribution<double>(rate)(gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> uni_{0.0, 1.0};
};

}  // namespace tar
