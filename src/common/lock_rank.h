// The repo-wide lock rank table: the single source of truth for latch
// acquisition order.
//
// Every `tar::Mutex` is constructed with a rank and a name. The rule is:
// a thread may only acquire a mutex whose rank is STRICTLY GREATER than
// the rank of every mutex it already holds, except that several mutexes
// of the SAME rank may be acquired in ascending construction order (this
// is how `BufferPool::set_quota` takes all 16 shard latches). Debug
// builds enforce the rule at acquire time (src/analysis/lock_order.h);
// `tools/lint/tar_lint.py` enforces it on every syntactic path; release
// builds carry no rank state at all.
//
// Adding a ranked lock (see docs/internals.md, "Threading model"):
//   1. Pick a slot here that respects every real acquisition order the
//      lock participates in — if it can be acquired while X is held, its
//      value must be greater than X's. Leave numeric gaps for future
//      locks.
//   2. Construct the member as `Mutex mu_{LockRank::kYourRank, "name"};`
//      (tar-lint rejects a bare `Mutex mu_;`).
//   3. Document the lock in the rank table in docs/internals.md.
//
// Rationale for the current order: tree-level coordination comes first
// (held across storage calls in the future sharded server), then WAL
// buffering, then buffer-pool shards, then the page directory (the one
// documented nesting today: a shard latch may be held while taking the
// PageFile latch). Observability and test facilities (metrics registry,
// failpoint registry) are leaf-most — they may be reached from inside
// any storage path (e.g. a `wal.sync` failpoint fires under the WAL
// writer latch), so they rank above everything.
#pragma once

#include <cstdint>

namespace tar {

enum class LockRank : std::uint16_t {
  /// Result/latency merge latch of the parallel-query worker pool.
  kParallelMerge = 100,

  /// ShardedServer ingestion queue (serve.ingest_queue). Never held across
  /// a store call: the ingest thread pops under the latch, releases, then
  /// applies.
  kServeIngestQueue = 110,

  /// ShardedServer rolling service stats (serve.stats): latency snapshot
  /// and outcome counters. Taken briefly after a query completes, never
  /// while any other latch is held.
  kServeStats = 120,

  /// ShardedStore cross-shard writer latch (sharded_store.writer): held
  /// while a mutation or checkpoint walks the shards, so it must rank
  /// below every per-shard snapshot.writer latch it acquires.
  kShardedWriter = 140,

  /// ShardedStore per-shard health bookkeeping (sharded_store.health):
  /// quarantine causes, suspect strikes, circuit-breaker state. Taken
  /// briefly from the read path alone and from the write/repair paths
  /// while sharded_store.writer is held (hence above kShardedWriter);
  /// never held across a shard call, so it stays below kTarTreeWriter.
  kShardHealth = 145,

  /// SnapshotStore per-shard writer latch (snapshot.writer): serializes
  /// log-append, replica apply and publish. Held across WAL and storage
  /// calls, hence below kWalWriter and the storage latches.
  kTarTreeWriter = 150,

  /// WalWriter's internal latch (group-commit buffer, LSN counter).
  kWalWriter = 200,

  /// BufferPool shard latches: 16 mutexes of equal rank, multi-acquired
  /// only in ascending construction (= shard index) order.
  kBufferPoolShard = 300,

  /// PageFile page-directory latch. May be acquired under a shard latch,
  /// never the reverse.
  kPageFile = 400,

  /// MetricsRegistry name->metric resolution latch (leaf).
  kMetricsRegistry = 900,

  /// FaultInjector site registry latch (leaf; failpoints fire from under
  /// storage latches, so this must outrank all of them).
  kFailpoint = 910,
};

/// The numeric value used in ordering comparisons and diagnostics.
constexpr std::uint32_t LockRankValue(LockRank rank) {
  return static_cast<std::uint32_t>(rank);
}

}  // namespace tar
