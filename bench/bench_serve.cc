// Mixed read/write serving bench: a ShardedServer preloaded with the
// first half of the GW history serves reader threads while the second
// half streams through the asynchronous ingestion queue. Reports read
// throughput, read latency percentiles, write throughput and — the
// number this bench exists to watch — reads_during_write: how many
// queries completed while an epoch batch was being applied. Snapshot
// isolation keeps that number close to reads_ok; a reader-excluding
// writer would drive it (and read throughput during ingestion) to zero.
//
//   bench_serve [--json [--out FILE]] [--duration-ms D] [--threads T]
//
// --json writes a machine-readable report (default BENCH_serve.json,
// validated in CI with `python3 -m json.tool`) instead of the table.
// Scale honours TAR_BENCH_SCALE.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/failpoint.h"
#include "core/serve.h"

using namespace tar;
using namespace tar::bench;

namespace {

struct RunResult {
  std::size_t shards = 0;
  std::size_t threads = 0;
  MixedLoadReport report;
};

/// One serving run: preload, then duration_ms of readers vs. the paced
/// write stream. Returns false on a setup or ingestion failure.
bool RunOne(const BenchData& bd, std::size_t shards, std::size_t threads,
            double duration_ms, RunResult* out) {
  const std::int64_t preload =
      std::max<std::int64_t>(1, bd.counts.num_epochs / 2);

  ShardedStoreOptions sopt;
  sopt.num_shards = shards;
  sopt.tree.grid = bd.grid;
  sopt.tree.space = bd.data.bounds;
  auto opened = ShardedStore::Open(sopt);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return false;
  }
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  for (PoiId id : bd.effective) {
    std::vector<std::int32_t> h = bd.counts.counts[id];
    if (h.size() > static_cast<std::size_t>(preload)) h.resize(preload);
    if (!store->InsertPoi(bd.data.pois[id], h).ok()) return false;
  }

  MixedLoadOptions mopt;
  mopt.reader_threads = threads;
  mopt.duration_ms = duration_ms;
  mopt.first_epoch = preload;
  mopt.write_interval_ms = 2.0;
  for (std::int64_t e = preload; e < bd.counts.num_epochs; ++e) {
    std::unordered_map<PoiId, std::int64_t> batch;
    for (PoiId id : bd.effective) {
      const std::vector<std::int32_t>& h = bd.counts.counts[id];
      if (static_cast<std::size_t>(e) < h.size() && h[e] > 0) {
        batch[id] = h[e];
      }
    }
    if (!batch.empty()) mopt.epoch_batches.push_back(std::move(batch));
  }
  if (mopt.epoch_batches.empty()) return false;
  mopt.queries = PaperQueries(bd, 64);
  for (KnntaQuery& q : mopt.queries) {
    // Clamp the workload into the preloaded history so every query has
    // indexed data to rank.
    q.interval.end = std::min(q.interval.end, bd.grid.EpochEnd(preload - 1));
    if (q.interval.start > q.interval.end) {
      q.interval.start = bd.grid.EpochStart(0);
    }
  }

  ShardedServer server(store.get(), ServeOptions{});
  server.Start();
  Status st = RunMixedLoad(&server, mopt, &out->report);
  server.Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "mixed load failed: %s\n", st.ToString().c_str());
    return false;
  }
  out->shards = store->num_shards();
  out->threads = threads;
  return out->report.reads_ok > 0;
}

/// Availability-during-fault run: the same mixed load against a durable
/// 4-shard store in partial-coverage mode with the repair worker on,
/// while a side thread tears shard 1's WAL for a window mid-run. The
/// payload's reads_during_quarantine / reads_partial / quarantines /
/// repairs fields quantify what a single-shard fault cost: reads keep
/// completing (healthy shards never stop serving) and the shard heals
/// online.
bool RunKill(const BenchData& bd, std::size_t threads, double duration_ms,
             RunResult* out) {
  fail::FaultInjector& injector = fail::FaultInjector::Global();
  injector.Clear();
  const std::string prefix = "bench_serve.kill";
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string base = prefix + ".shard" + std::to_string(i);
    std::remove((base + ".snapshot").c_str());
    std::remove((base + ".wal").c_str());
    std::remove((base + ".redo").c_str());
  }
  const std::int64_t preload =
      std::max<std::int64_t>(1, bd.counts.num_epochs / 2);

  ShardedStoreOptions sopt;
  sopt.num_shards = 4;
  sopt.tree.grid = bd.grid;
  sopt.tree.space = bd.data.bounds;
  sopt.store_prefix = prefix;
  sopt.wal.group_commit_records = 1;
  sopt.fault.retry_backoff_ms = 0.1;
  sopt.fault.repair_backoff_ms = 2.0;
  sopt.fault.repair_backoff_max_ms = 50.0;
  auto opened = ShardedStore::Open(sopt);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return false;
  }
  std::unique_ptr<ShardedStore> store = std::move(opened).ValueOrDie();
  for (PoiId id : bd.effective) {
    std::vector<std::int32_t> h = bd.counts.counts[id];
    if (h.size() > static_cast<std::size_t>(preload)) h.resize(preload);
    if (!store->InsertPoi(bd.data.pois[id], h).ok()) return false;
  }

  MixedLoadOptions mopt;
  mopt.reader_threads = threads;
  mopt.duration_ms = duration_ms;
  mopt.first_epoch = preload;
  mopt.write_interval_ms = 2.0;
  for (std::int64_t e = preload; e < bd.counts.num_epochs; ++e) {
    std::unordered_map<PoiId, std::int64_t> batch;
    for (PoiId id : bd.effective) {
      const std::vector<std::int32_t>& h = bd.counts.counts[id];
      if (static_cast<std::size_t>(e) < h.size() && h[e] > 0) {
        batch[id] = h[e];
      }
    }
    if (!batch.empty()) mopt.epoch_batches.push_back(std::move(batch));
  }
  if (mopt.epoch_batches.empty()) return false;
  mopt.queries = PaperQueries(bd, 64);
  for (KnntaQuery& q : mopt.queries) {
    q.interval.end = std::min(q.interval.end, bd.grid.EpochEnd(preload - 1));
    if (q.interval.start > q.interval.end) {
      q.interval.start = bd.grid.EpochStart(0);
    }
  }

  ServeOptions vopt;
  vopt.partial_coverage = true;
  vopt.auto_repair = true;
  vopt.repair_poll_ms = 1.0;
  ShardedServer server(store.get(), vopt);
  server.Start();

  // The killer: a third of the way in, tear shard 1's WAL for a third of
  // the run, then lift the fault and let the repair worker heal it.
  std::thread killer([&] {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(duration_ms * 0.3));
    (void)injector.Configure("wal.torn=torn@shard:1");
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(duration_ms * 0.35));
    injector.Clear();
  });
  Status st = RunMixedLoad(&server, mopt, &out->report);
  killer.join();
  injector.Clear();

  // Let the self-heal finish so the payload reports the repaired state.
  const auto heal_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < heal_deadline &&
         !store->AllHealthy()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  if (!st.ok()) {
    std::fprintf(stderr, "shard-kill load failed: %s\n",
                 st.ToString().c_str());
    return false;
  }
  // The repair typically lands after the load window closes; fold the
  // final fault counters into the payload so it reflects the whole run.
  const ServerStats stats = server.stats();
  out->report.reads_partial = stats.reads_partial;
  out->report.reads_during_quarantine = stats.reads_during_quarantine;
  out->report.quarantines = stats.fault.quarantines;
  out->report.repairs = stats.fault.repairs;
  out->report.repair_latency = stats.fault.repair_latency;
  out->shards = store->num_shards();
  out->threads = threads;

  for (std::size_t i = 0; i < 4; ++i) {
    const std::string base = prefix + ".shard" + std::to_string(i);
    std::remove((base + ".snapshot").c_str());
    std::remove((base + ".wal").c_str());
    std::remove((base + ".redo").c_str());
  }
  if (!store->AllHealthy()) {
    std::fprintf(stderr, "shard never healed after the kill window\n");
    return false;
  }
  // Availability: reads completed while the shard was down.
  return out->report.reads_ok > 0 && out->report.reads_failed == 0 &&
         out->report.quarantines > 0 &&
         out->report.reads_during_quarantine > 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path = "BENCH_serve.json";
  double duration_ms = 1500.0;
  std::size_t threads =
      std::min<std::size_t>(4, std::max<std::size_t>(
                                   2, std::thread::hardware_concurrency()));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      duration_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoll(argv[++i]);
    }
  }

  BenchData bd = PrepareGw();
  std::vector<RunResult> runs;
  std::vector<std::string> labels;
  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    RunResult r;
    if (!RunOne(bd, shards, threads, duration_ms, &r)) {
      std::fprintf(stderr, "serve bench failed at %zu shard(s)\n", shards);
      return 1;
    }
    runs.push_back(std::move(r));
    labels.push_back("mixed-load");
  }
  {
    RunResult r;
    if (!RunKill(bd, threads, duration_ms, &r)) {
      std::fprintf(stderr, "serve bench failed in the shard-kill run\n");
      return 1;
    }
    runs.push_back(std::move(r));
    labels.push_back("shard-kill");
  }

  if (json) {
    std::string doc = "{\"bench\":\"serve\"";
    doc += ",\"scale\":" + Table::Num(ScaleFromEnv(), 3);
    doc += ",\"dataset\":\"" + bd.name + "\"";
    doc += ",\"runs\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i > 0) doc += ",";
      doc += runs[i].report.ToJson(labels[i], runs[i].shards,
                                   runs[i].threads);
    }
    doc += "]}\n";
    std::ofstream out(out_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << doc;
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }

  Table table("mixed read/write serving (" + bd.name + ")",
              {"run", "shards", "readers", "reads/s", "writes/s", "p50 us",
               "p95 us", "p99 us", "during write", "during fault"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    const MixedLoadReport& rep = r.report;
    table.AddRow({labels[i], std::to_string(r.shards),
                  std::to_string(r.threads), Table::Num(rep.read_qps, 0),
                  Table::Num(rep.write_qps, 1),
                  Table::Num(rep.read_latency.P50(), 1),
                  Table::Num(rep.read_latency.P95(), 1),
                  Table::Num(rep.read_latency.P99(), 1),
                  std::to_string(rep.reads_during_write),
                  std::to_string(rep.reads_during_quarantine)});
  }
  table.Print();
  return 0;
}
