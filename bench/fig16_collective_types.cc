// Figure 16: collective vs individual processing, varying the number of
// query time-interval types from 1 to 100 (batch of 1000 queries).
#include "bench/bench_common.h"
#include "core/collective.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  auto tree = BuildTree(bd, GroupingStrategy::kIntegral3D,
                        /*node_size_bytes=*/1024, /*tia_buffer_slots=*/0);
  WorkloadConfig wl;
  const std::size_t kBatch = 1000;

  Table cpu("Figure 16 collective CPU time (ms) " + bd.name,
            {"types", "individual", "collective"});
  Table na("Figure 16 collective node accesses " + bd.name,
           {"types", "individual", "collective"});
  for (std::size_t types : {1u, 5u, 10u, 50u, 100u}) {
    wl.seed = 59 + types;
    std::vector<KnntaQuery> batch =
        MakeBatchQueries(bd.data, kBatch, types, wl);
    std::vector<std::vector<KnntaResult>> out;
    AccessStats ind_stats, col_stats;
    double ind_ms = MeasureMs([&] {
      Status st = ProcessIndividually(*tree, batch, &out, &ind_stats);
      if (!st.ok()) std::abort();
    });
    double col_ms = MeasureMs([&] {
      Status st = ProcessCollectively(*tree, batch, &out, &col_stats);
      if (!st.ok()) std::abort();
    });
    double d = static_cast<double>(kBatch);
    cpu.AddRow({std::to_string(types), Table::Num(ind_ms / d),
                Table::Num(col_ms / d)});
    na.AddRow({std::to_string(types),
               Table::Num(ind_stats.NodeAccesses() / d, 1),
               Table::Num(col_stats.NodeAccesses() / d, 1)});
  }
  cpu.Print();
  na.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
