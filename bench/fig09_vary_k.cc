// Figure 9: the four approaches, varying k from 1 to 100 — mean CPU time
// and node accesses per query.
#include "bench/bench_common.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  ApproachSet set = BuildAll(bd);
  std::vector<KnntaQuery> base = PaperQueries(bd, QueriesFromEnv());

  Table cpu("Figure 9 CPU time (ms) " + bd.name,
            {"k", "baseline", "IND-agg", "IND-spa", "TAR-tree"});
  Table na("Figure 9 node accesses " + bd.name,
           {"k", "IND-agg", "IND-spa", "TAR-tree"});
  for (std::size_t k : {1u, 5u, 10u, 50u, 100u}) {
    std::vector<KnntaQuery> queries = base;
    for (KnntaQuery& q : queries) q.k = k;
    ApproachCost scan = RunScan(*set.scan, queries);
    ApproachCost agg = RunQueries(*set.ind_agg, queries);
    ApproachCost spa = RunQueries(*set.ind_spa, queries);
    ApproachCost tar = RunQueries(*set.tar, queries);
    cpu.AddRow({std::to_string(k), Table::Num(scan.cpu_ms),
                Table::Num(agg.cpu_ms), Table::Num(spa.cpu_ms),
                Table::Num(tar.cpu_ms)});
    na.AddRow({std::to_string(k), Table::Num(agg.node_accesses, 1),
               Table::Num(spa.node_accesses, 1),
               Table::Num(tar.node_accesses, 1)});
  }
  cpu.Print();
  na.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
