// kNNTA latency bench: drives the paper workload through the parallel
// query driver and reports wall time, throughput, latency percentiles
// (p50/p95/p99 from the merged per-query histogram) and per-batch
// buffer-pool hit rates, at 1 thread and at hardware concurrency.
//
//   bench_knnta [--json [--out FILE]]
//
// --json writes a machine-readable report (default BENCH_knnta.json,
// validated in CI with `python3 -m json.tool`) instead of the tables.
// Scale and query count honour TAR_BENCH_SCALE / TAR_BENCH_QUERIES.
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/parallel_query.h"

using namespace tar;
using namespace tar::bench;

namespace {

struct RunResult {
  std::size_t threads = 0;
  ParallelQueryReport report;
};

std::string Num(double v) { return Table::Num(v, 3); }

std::string RunJson(const BenchData& bd, const RunResult& r) {
  const ParallelQueryReport& rep = r.report;
  const double n = rep.results.empty()
                       ? 1.0
                       : static_cast<double>(rep.results.size());
  std::string out = "{";
  out += "\"dataset\":\"" + bd.name + "\"";
  out += ",\"threads\":" + std::to_string(r.threads);
  out += ",\"queries\":" + std::to_string(rep.results.size());
  out += ",\"queries_ok\":" + std::to_string(rep.queries_ok);
  out += ",\"queries_failed\":" + std::to_string(rep.queries_failed);
  out += ",\"wall_ms\":" + Num(rep.wall_micros / 1000.0);
  out += ",\"throughput_qps\":" + Num(rep.Throughput());
  out += ",\"latency\":" + rep.latency.ToJson();
  out += ",\"node_accesses_per_query\":" +
         Num(static_cast<double>(rep.total_stats.NodeAccesses()) / n);
  out += ",\"pool\":{\"fetches\":" +
         std::to_string(rep.pool_delta.Fetches());
  out += ",\"hits\":" + std::to_string(rep.pool_delta.hits);
  out += ",\"misses\":" + std::to_string(rep.pool_delta.misses);
  out += ",\"hit_rate\":" + Num(rep.pool_delta.HitRate()) + "}";
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path = "BENCH_knnta.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  BenchData bd = PrepareGw();
  std::unique_ptr<TarTree> tree =
      BuildTree(bd, GroupingStrategy::kIntegral3D);
  std::vector<KnntaQuery> queries = PaperQueries(bd, QueriesFromEnv());

  const std::size_t hw =
      std::max<std::size_t>(2, std::thread::hardware_concurrency());
  std::vector<RunResult> runs;
  for (std::size_t threads : {std::size_t{1}, hw}) {
    ParallelQueryOptions opt;
    opt.num_threads = threads;
    RunResult r;
    r.threads = threads;
    Status st = RunParallelQueries(*tree, queries, opt, &r.report);
    if (!st.ok()) {
      std::fprintf(stderr, "bench run failed: %s\n", st.ToString().c_str());
      return 1;
    }
    runs.push_back(std::move(r));
  }

  if (json) {
    std::string doc = "{\"bench\":\"knnta\"";
    doc += ",\"scale\":" + Num(ScaleFromEnv());
    doc += ",\"runs\":[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i > 0) doc += ",";
      doc += RunJson(bd, runs[i]);
    }
    doc += "]}\n";
    std::ofstream out(out_path);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << doc;
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }

  Table table("kNNTA latency (" + bd.name + ")",
              {"threads", "wall ms", "q/s", "mean us", "p50 us", "p95 us",
               "p99 us", "max us", "hit rate"});
  for (const RunResult& r : runs) {
    const ParallelQueryReport& rep = r.report;
    table.AddRow({std::to_string(r.threads),
                  Table::Num(rep.wall_micros / 1000.0, 1),
                  Table::Num(rep.Throughput(), 0),
                  Table::Num(rep.mean_query_micros, 1),
                  Table::Num(rep.latency.P50(), 1),
                  Table::Num(rep.latency.P95(), 1),
                  Table::Num(rep.latency.P99(), 1),
                  Table::Num(rep.latency.max_micros, 1),
                  Table::Num(rep.pool_delta.HitRate(), 3)});
  }
  table.Print();
  return 0;
}
