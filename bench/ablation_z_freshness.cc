// Ablation: freshness of the integral-3D z coordinates.
//
// The z coordinate of a POI depends on the global maximum check-in total,
// so grouping quality depends on *when* z was computed. This quantifies
// the effect the paper's Figure 8 discussion attributes to the TAR-tree
// "not adjusting promptly": (a) bulk build with z computed against the
// running maximum (stale), (b) bulk build with the maximum seeded up
// front, (c) grown epoch-by-epoch, (d) grown then Rebuild().
#include "bench/bench_common.h"

using namespace tar;
using namespace tar::bench;

namespace {

std::unique_ptr<TarTree> BuildStale(const BenchData& bd) {
  TarTreeOptions opt;
  opt.strategy = GroupingStrategy::kIntegral3D;
  opt.grid = bd.grid;
  opt.space = bd.data.bounds;
  auto tree = std::make_unique<TarTree>(opt);  // no SeedMaxTotal
  for (PoiId id : bd.effective) {
    if (!tree->InsertPoi(bd.data.pois[id], bd.counts.counts[id]).ok()) {
      std::abort();
    }
  }
  return tree;
}

std::unique_ptr<TarTree> BuildGrown(const BenchData& bd) {
  TarTreeOptions opt;
  opt.strategy = GroupingStrategy::kIntegral3D;
  opt.grid = bd.grid;
  opt.space = bd.data.bounds;
  auto tree = std::make_unique<TarTree>(opt);
  for (PoiId id : bd.effective) {
    if (!tree->InsertPoi(bd.data.pois[id], {}).ok()) std::abort();
  }
  for (std::int64_t e = 0; e < bd.counts.num_epochs; ++e) {
    std::unordered_map<PoiId, std::int64_t> batch;
    for (PoiId id : bd.effective) {
      const auto& h = bd.counts.counts[id];
      if (e < (std::int64_t)h.size() && h[e] > 0) batch[id] = h[e];
    }
    if (!tree->AppendEpoch(e, batch).ok()) std::abort();
  }
  return tree;
}

void RunDataset(const BenchData& bd) {
  std::vector<KnntaQuery> queries = PaperQueries(bd, QueriesFromEnv());
  Table table("Ablation z freshness " + bd.name,
              {"variant", "node_accesses", "cpu_ms"});

  auto report = [&](const char* label, TarTree& tree) {
    ApproachCost cost = RunQueries(tree, queries);
    table.AddRow({label, Table::Num(cost.node_accesses, 1),
                  Table::Num(cost.cpu_ms)});
  };

  auto stale = BuildStale(bd);
  report("bulk, running max (stale z)", *stale);
  auto seeded = BuildTree(bd, GroupingStrategy::kIntegral3D);
  report("bulk, seeded max", *seeded);
  auto grown = BuildGrown(bd);
  report("grown epoch-by-epoch", *grown);
  if (!grown->Rebuild().ok()) std::abort();
  report("grown + Rebuild()", *grown);

  table.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
