// Figure 11: the four approaches, varying the epoch length from 1 to 28
// days. A longer epoch strengthens the TAR-tree's pruning (a parent TIA is
// closer to its children's maxima) and every approach sums fewer values.
#include "bench/bench_common.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const std::string& which) {
  Table cpu("Figure 11 CPU time (ms) " + which,
            {"epoch_days", "baseline", "IND-agg", "IND-spa", "TAR-tree"});
  Table na("Figure 11 node accesses " + which,
           {"epoch_days", "IND-agg", "IND-spa", "TAR-tree"});
  for (int days : {1, 3, 7, 14, 28}) {
    BenchData bd = which == "GW" ? PrepareGw(days) : PrepareGs(days);
    ApproachSet set = BuildAll(bd);
    std::vector<KnntaQuery> queries = PaperQueries(bd, QueriesFromEnv());
    ApproachCost scan = RunScan(*set.scan, queries);
    ApproachCost agg = RunQueries(*set.ind_agg, queries);
    ApproachCost spa = RunQueries(*set.ind_spa, queries);
    ApproachCost tar = RunQueries(*set.tar, queries);
    cpu.AddRow({std::to_string(days), Table::Num(scan.cpu_ms),
                Table::Num(agg.cpu_ms), Table::Num(spa.cpu_ms),
                Table::Num(tar.cpu_ms)});
    na.AddRow({std::to_string(days), Table::Num(agg.node_accesses, 1),
               Table::Num(spa.node_accesses, 1),
               Table::Num(tar.node_accesses, 1)});
  }
  cpu.Print();
  na.Print();
}

}  // namespace

int main() {
  RunDataset("GW");
  RunDataset("GS");
  return 0;
}
