// Ablation: the TIA buffer quota. The paper fixes 10 slots per TIA (and 0
// in the collective experiments); this sweep shows how the buffer converts
// TIA page reads into hits and where it saturates.
#include "bench/bench_common.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  std::vector<KnntaQuery> queries = PaperQueries(bd, QueriesFromEnv());
  Table table("Ablation TIA buffer slots " + bd.name,
              {"slots", "node_accesses", "tia_reads", "tia_hits", "cpu_ms"});
  for (std::size_t slots : {0u, 1u, 2u, 5u, 10u, 50u}) {
    auto tree = BuildTree(bd, GroupingStrategy::kIntegral3D, 1024, slots);
    AccessStats stats;
    std::vector<KnntaResult> results;
    double ms = MeasureMs([&] {
      for (const KnntaQuery& q : queries) {
        if (!tree->Query(q, &results, &stats).ok()) std::abort();
      }
    });
    double n = static_cast<double>(queries.size());
    table.AddRow({std::to_string(slots),
                  Table::Num(stats.NodeAccesses() / n, 1),
                  Table::Num(stats.tia_page_reads / n, 1),
                  Table::Num(stats.tia_buffer_hits / n, 1),
                  Table::Num(ms / n)});
  }
  table.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
