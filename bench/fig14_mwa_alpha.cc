// Figure 14: computing the minimum weight adjustment, enumerating vs
// pruning, varying alpha0 from 0.1 to 0.9.
#include "bench/bench_common.h"
#include "core/mwa.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  auto tree = BuildTree(bd, GroupingStrategy::kIntegral3D);
  std::size_t num_queries = std::max<std::size_t>(5, QueriesFromEnv() / 10);
  std::vector<KnntaQuery> base = PaperQueries(bd, num_queries, /*seed=*/29);

  Table cpu("Figure 14 MWA CPU time (ms) " + bd.name,
            {"alpha0", "enumerating", "pruning"});
  Table na("Figure 14 MWA node accesses " + bd.name,
           {"alpha0", "enumerating", "pruning"});
  for (double alpha0 : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    AccessStats enum_stats, prune_stats;
    MwaResult mwa;
    double enum_ms = MeasureMs([&] {
      for (KnntaQuery q : base) {
        q.alpha0 = alpha0;
        Status st = ComputeMwaEnumerating(*tree, q, &mwa, &enum_stats);
        if (!st.ok()) std::abort();
      }
    });
    double prune_ms = MeasureMs([&] {
      for (KnntaQuery q : base) {
        q.alpha0 = alpha0;
        Status st = ComputeMwaPruning(*tree, q, &mwa, &prune_stats);
        if (!st.ok()) std::abort();
      }
    });
    double n = static_cast<double>(base.size());
    cpu.AddRow({Table::Num(alpha0, 1), Table::Num(enum_ms / n),
                Table::Num(prune_ms / n)});
    na.AddRow({Table::Num(alpha0, 1),
               Table::Num(enum_stats.NodeAccesses() / n, 1),
               Table::Num(prune_stats.NodeAccesses() / n, 1)});
  }
  cpu.Print();
  na.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
