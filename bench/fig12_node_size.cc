// Figure 12: the four approaches, varying the R-tree node size from 512 to
// 8192 bytes (node capacities scale linearly with the size).
#include "bench/bench_common.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  std::vector<KnntaQuery> queries = PaperQueries(bd, QueriesFromEnv());
  Table cpu("Figure 12 CPU time (ms) " + bd.name,
            {"node_bytes", "baseline", "IND-agg", "IND-spa", "TAR-tree"});
  Table na("Figure 12 node accesses " + bd.name,
           {"node_bytes", "IND-agg", "IND-spa", "TAR-tree"});
  auto scan = BuildScan(bd);
  ApproachCost scan_cost = RunScan(*scan, queries);
  for (std::size_t bytes : {512u, 1024u, 2048u, 4096u, 8192u}) {
    ApproachSet set = BuildAll(bd, bytes);
    ApproachCost agg = RunQueries(*set.ind_agg, queries);
    ApproachCost spa = RunQueries(*set.ind_spa, queries);
    ApproachCost tar = RunQueries(*set.tar, queries);
    cpu.AddRow({std::to_string(bytes), Table::Num(scan_cost.cpu_ms),
                Table::Num(agg.cpu_ms), Table::Num(spa.cpu_ms),
                Table::Num(tar.cpu_ms)});
    na.AddRow({std::to_string(bytes), Table::Num(agg.node_accesses, 1),
               Table::Num(spa.node_accesses, 1),
               Table::Num(tar.node_accesses, 1)});
  }
  cpu.Print();
  na.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
