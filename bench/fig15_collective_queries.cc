// Figure 15: collective vs individual processing, varying the number of
// queries in the batch — mean CPU time and node accesses per query. As in
// the paper's setup, the TIAs get no buffer slots so the sharing comes
// from the algorithm, not the cache.
#include "bench/bench_common.h"
#include "core/collective.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  auto tree = BuildTree(bd, GroupingStrategy::kIntegral3D,
                        /*node_size_bytes=*/1024, /*tia_buffer_slots=*/0);
  WorkloadConfig wl;
  const std::size_t kTypes = 5;

  Table cpu("Figure 15 collective CPU time (ms) " + bd.name,
            {"num_queries", "individual", "collective"});
  Table na("Figure 15 collective node accesses " + bd.name,
           {"num_queries", "individual", "collective"});
  for (std::size_t n : {100u, 500u, 1000u, 5000u, 10000u}) {
    wl.seed = 41 + n;
    std::vector<KnntaQuery> batch = MakeBatchQueries(bd.data, n, kTypes, wl);
    std::vector<std::vector<KnntaResult>> out;
    AccessStats ind_stats, col_stats;
    double ind_ms = MeasureMs([&] {
      Status st = ProcessIndividually(*tree, batch, &out, &ind_stats);
      if (!st.ok()) std::abort();
    });
    double col_ms = MeasureMs([&] {
      Status st = ProcessCollectively(*tree, batch, &out, &col_stats);
      if (!st.ok()) std::abort();
    });
    double d = static_cast<double>(n);
    cpu.AddRow({std::to_string(n), Table::Num(ind_ms / d),
                Table::Num(col_ms / d)});
    na.AddRow({std::to_string(n),
               Table::Num(ind_stats.NodeAccesses() / d, 1),
               Table::Num(col_stats.NodeAccesses() / d, 1)});
  }
  cpu.Print();
  na.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
