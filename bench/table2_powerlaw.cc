// Table 2: power-law fit of the per-POI aggregate values on the four data
// sets (n, beta-hat, xmin-hat, bootstrap p-value). The paper rules out the
// power-law hypothesis when p <= 0.1; all four data sets pass.
#include <cstdio>

#include "bench/bench_common.h"
#include "common/powerlaw.h"

using namespace tar;
using namespace tar::bench;

namespace {

struct PaperRow {
  double beta;
  std::int64_t xmin;
  double p;
};

void FitOne(Table* table, const GeneratorConfig& cfg,
            const PaperRow& paper) {
  Dataset data = GenerateLbsn(cfg);
  std::vector<std::int64_t> totals(data.pois.size(), 0);
  for (const CheckIn& c : data.checkins) ++totals[c.poi];

  PowerLawFit fit = FitPowerLaw(totals);
  Rng rng(99);
  double p = PowerLawPValue(totals, fit, /*num_reps=*/50, rng);
  table->AddRow({cfg.name, std::to_string(totals.size()),
                 Table::Num(fit.beta, 2), std::to_string(fit.xmin),
                 Table::Num(p, 2), Table::Num(paper.beta, 2),
                 std::to_string(paper.xmin), Table::Num(paper.p, 2)});
}

}  // namespace

int main() {
  double scale = ScaleFromEnv(0.03);
  std::printf("Table 2: power-law fitting (scale %.3f; p-value from 50 "
              "bootstrap replicates, power law ruled out iff p <= 0.1)\n",
              scale);
  Table table("Table 2 power-law fitting",
              {"Data", "n", "beta", "xmin", "p-value", "paper_beta",
               "paper_xmin", "paper_p"});
  // NYC and LA are the small data sets: give the fitter a few
  // hundred tail samples to lock onto.
  FitOne(&table, NycConfig(scale * 4.0), {3.20, 31, 0.68});
  FitOne(&table, LaConfig(scale * 6.0), {3.07, 16, 0.18});
  FitOne(&table, GwConfig(scale), {2.82, 85, 0.29});
  FitOne(&table, GsConfig(scale * 3.0), {2.19, 59, 0.21});
  table.Print();
  return 0;
}
