// Figure 10: the four approaches, varying alpha0 from 0.1 to 0.9.
#include "bench/bench_common.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  ApproachSet set = BuildAll(bd);
  std::vector<KnntaQuery> base = PaperQueries(bd, QueriesFromEnv());

  Table cpu("Figure 10 CPU time (ms) " + bd.name,
            {"alpha0", "baseline", "IND-agg", "IND-spa", "TAR-tree"});
  Table na("Figure 10 node accesses " + bd.name,
           {"alpha0", "IND-agg", "IND-spa", "TAR-tree"});
  for (double alpha0 : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<KnntaQuery> queries = base;
    for (KnntaQuery& q : queries) q.alpha0 = alpha0;
    ApproachCost scan = RunScan(*set.scan, queries);
    ApproachCost agg = RunQueries(*set.ind_agg, queries);
    ApproachCost spa = RunQueries(*set.ind_spa, queries);
    ApproachCost tar = RunQueries(*set.tar, queries);
    cpu.AddRow({Table::Num(alpha0, 1), Table::Num(scan.cpu_ms),
                Table::Num(agg.cpu_ms), Table::Num(spa.cpu_ms),
                Table::Num(tar.cpu_ms)});
    na.AddRow({Table::Num(alpha0, 1), Table::Num(agg.node_accesses, 1),
               Table::Num(spa.node_accesses, 1),
               Table::Num(tar.node_accesses, 1)});
  }
  cpu.Print();
  na.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
