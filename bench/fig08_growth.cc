// Figure 8: TAR-tree vs IND-spa / IND-agg / sequential baseline while the
// LBSN grows — snapshots at 20%..100% of the observed period; mean CPU time
// and node accesses per query.
#include "bench/bench_common.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& full) {
  Table cpu("Figure 8 CPU time (ms) " + full.name,
            {"time", "baseline", "IND-agg", "IND-spa", "TAR-tree"});
  Table na("Figure 8 node accesses " + full.name,
           {"time", "IND-agg", "IND-spa", "TAR-tree"});
  std::size_t num_queries = QueriesFromEnv();

  for (int pct : {20, 40, 60, 80, 100}) {
    BenchData snap = PrepareSnapshot(full, pct / 100.0);
    ApproachSet set = BuildAll(snap);
    std::vector<KnntaQuery> queries =
        PaperQueries(snap, num_queries, /*seed=*/100 + pct);
    ApproachCost scan = RunScan(*set.scan, queries);
    ApproachCost agg = RunQueries(*set.ind_agg, queries);
    ApproachCost spa = RunQueries(*set.ind_spa, queries);
    ApproachCost tar = RunQueries(*set.tar, queries);
    std::string label = std::to_string(pct) + "%";
    cpu.AddRow({label, Table::Num(scan.cpu_ms), Table::Num(agg.cpu_ms),
                Table::Num(spa.cpu_ms), Table::Num(tar.cpu_ms)});
    na.AddRow({label, Table::Num(agg.node_accesses, 1),
               Table::Num(spa.node_accesses, 1),
               Table::Num(tar.node_accesses, 1)});
  }
  cpu.Print();
  na.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
