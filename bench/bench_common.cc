#include "bench/bench_common.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "data/loader.h"

namespace tar::bench {

double ScaleFromEnv(double def) {
  const char* s = std::getenv("TAR_BENCH_SCALE");
  if (s == nullptr) return def;
  double v = std::atof(s);
  return v > 0.0 ? v : def;
}

std::size_t QueriesFromEnv(std::size_t def) {
  const char* s = std::getenv("TAR_BENCH_QUERIES");
  if (s == nullptr) return def;
  long v = std::atol(s);
  return v > 0 ? static_cast<std::size_t>(v) : def;
}

BenchData Prepare(const GeneratorConfig& config, int epoch_days) {
  BenchData bd;
  bd.name = config.name;
  bd.data = GenerateLbsn(config);
  bd.grid = EpochGrid(0, epoch_days * kSecondsPerDay);
  bd.counts = BuildEpochCounts(bd.data, bd.grid);
  bd.effective = EffectivePois(bd.counts, config.effective_threshold);
  bd.effective_threshold = config.effective_threshold;
  return bd;
}

namespace {

BenchData PrepareFromFile(const char* path, std::int64_t threshold,
                          int epoch_days) {
  BenchData bd;
  auto res = LoadSnapCheckinsFile(path);
  if (!res.ok()) {
    std::fprintf(stderr, "warning: cannot load %s (%s); using synthetic\n",
                 path, res.status().ToString().c_str());
    return PrepareGw(epoch_days);
  }
  bd.data = std::move(res).ValueOrDie();
  bd.name = "GW(file)";
  bd.grid = EpochGrid(0, epoch_days * kSecondsPerDay);
  bd.counts = BuildEpochCounts(bd.data, bd.grid);
  bd.effective = EffectivePois(bd.counts, threshold);
  bd.effective_threshold = threshold;
  return bd;
}

}  // namespace

BenchData PrepareGw(int epoch_days) {
  if (const char* path = std::getenv("TAR_GOWALLA_FILE")) {
    return PrepareFromFile(path, 100, epoch_days);
  }
  GeneratorConfig cfg = GwConfig(ScaleFromEnv());
  // At laptop scale the paper's threshold of 100 check-ins would leave too
  // few effective POIs with the real 2% tail; boost the tail so a few
  // thousand POIs qualify (see EXPERIMENTS.md, "scaling").
  cfg.tail_fraction = 0.08;
  return Prepare(cfg, epoch_days);
}

BenchData PrepareGs(int epoch_days) {
  GeneratorConfig cfg = GsConfig(ScaleFromEnv() * 3.0);
  cfg.tail_fraction = 0.12;
  return Prepare(cfg, epoch_days);
}

std::unique_ptr<TarTree> BuildTree(const BenchData& bd,
                                   GroupingStrategy strategy,
                                   std::size_t node_size_bytes,
                                   std::size_t tia_buffer_slots) {
  TarTreeOptions opt;
  opt.strategy = strategy;
  opt.node_size_bytes = node_size_bytes;
  opt.tia_buffer_slots = tia_buffer_slots;
  opt.grid = bd.grid;
  opt.space = bd.data.bounds;
  auto tree = std::make_unique<TarTree>(opt);
  std::int64_t max_total = 0;
  for (PoiId id : bd.effective) {
    max_total = std::max(max_total, bd.counts.Total(id));
  }
  tree->SeedMaxTotal(max_total);
  for (PoiId id : bd.effective) {
    Status st = tree->InsertPoi(bd.data.pois[id], bd.counts.counts[id]);
    if (!st.ok()) {
      std::fprintf(stderr, "InsertPoi failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  return tree;
}

std::unique_ptr<ScanBaseline> BuildScan(const BenchData& bd) {
  auto scan = std::make_unique<ScanBaseline>(bd.grid, bd.data.bounds);
  for (PoiId id : bd.effective) {
    Status st = scan->AddPoi(bd.data.pois[id], bd.counts.counts[id]);
    if (!st.ok()) {
      std::fprintf(stderr, "AddPoi failed: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
  return scan;
}

std::vector<KnntaQuery> PaperQueries(const BenchData& bd, std::size_t n,
                                     std::uint64_t seed) {
  WorkloadConfig wl;
  wl.num_queries = n;
  wl.seed = seed;
  return MakeQueries(bd.data, wl);
}

BenchData PrepareSnapshot(const BenchData& bd, double fraction) {
  BenchData out;
  out.name = bd.name;
  out.data = bd.data.SnapshotUntil(
      static_cast<Timestamp>(bd.data.t_end * fraction));
  out.grid = bd.grid;
  out.counts = BuildEpochCounts(out.data, out.grid);
  out.effective = EffectivePois(out.counts, bd.effective_threshold);
  out.effective_threshold = bd.effective_threshold;
  return out;
}

ApproachSet BuildAll(const BenchData& bd, std::size_t node_size_bytes) {
  ApproachSet set;
  set.ind_agg = BuildTree(bd, GroupingStrategy::kAggregate, node_size_bytes);
  set.ind_spa = BuildTree(bd, GroupingStrategy::kSpatial, node_size_bytes);
  set.tar = BuildTree(bd, GroupingStrategy::kIntegral3D, node_size_bytes);
  set.scan = BuildScan(bd);
  return set;
}

ApproachCost RunQueries(const TarTree& tree,
                        const std::vector<KnntaQuery>& queries) {
  ApproachCost cost;
  if (queries.empty()) return cost;
  AccessStats stats;
  std::vector<KnntaResult> results;
  cost.cpu_ms = MeasureMs([&] {
    for (const KnntaQuery& q : queries) {
      Status st = tree.Query(q, &results, &stats);
      if (!st.ok()) {
        std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
        std::abort();
      }
    }
  });
  cost.cpu_ms /= static_cast<double>(queries.size());
  cost.node_accesses = static_cast<double>(stats.NodeAccesses()) /
                       static_cast<double>(queries.size());
  return cost;
}

ApproachCost RunScan(const ScanBaseline& scan,
                     const std::vector<KnntaQuery>& queries) {
  ApproachCost cost;
  if (queries.empty()) return cost;
  std::vector<KnntaResult> results;
  cost.cpu_ms = MeasureMs([&] {
    for (const KnntaQuery& q : queries) {
      Status st = scan.Query(q, &results);
      if (!st.ok()) {
        std::fprintf(stderr, "scan failed: %s\n", st.ToString().c_str());
        std::abort();
      }
    }
  });
  cost.cpu_ms /= static_cast<double>(queries.size());
  return cost;
}

double MeasureMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

Table::Table(const std::string& title, const std::vector<std::string>& cols)
    : title_(title), columns_(cols) {}

void Table::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::Print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      if (c < row.size()) widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n== %s ==\n", title_.c_str());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns_[c].c_str());
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  }
  std::fflush(stdout);

  // CSV alongside, for plotting.
  ::mkdir("bench_results", 0755);
  std::string slug = title_;
  for (char& ch : slug) {
    if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  std::ofstream csv("bench_results/" + slug + ".csv");
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    csv << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      csv << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  }
}

}  // namespace tar::bench
