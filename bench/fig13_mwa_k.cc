// Figure 13: computing the minimum weight adjustment, enumerating vs
// pruning, varying k from 10 to 1000 — mean CPU time and node accesses.
#include "bench/bench_common.h"
#include "core/mwa.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  auto tree = BuildTree(bd, GroupingStrategy::kIntegral3D);
  // The enumerating baseline traverses the tree once per top-k POI, so the
  // workload is kept small (the paper averages 1000 queries on a server).
  std::size_t num_queries = std::max<std::size_t>(5, QueriesFromEnv() / 20);
  std::vector<KnntaQuery> base = PaperQueries(bd, num_queries, /*seed=*/23);

  Table cpu("Figure 13 MWA CPU time (ms) " + bd.name,
            {"k", "enumerating", "pruning"});
  Table na("Figure 13 MWA node accesses " + bd.name,
           {"k", "enumerating", "pruning"});
  for (std::size_t k : {10u, 50u, 100u, 500u, 1000u}) {
    AccessStats enum_stats, prune_stats;
    MwaResult mwa;
    double enum_ms = MeasureMs([&] {
      for (KnntaQuery q : base) {
        q.k = k;
        Status st = ComputeMwaEnumerating(*tree, q, &mwa, &enum_stats);
        if (!st.ok()) std::abort();
      }
    });
    double prune_ms = MeasureMs([&] {
      for (KnntaQuery q : base) {
        q.k = k;
        Status st = ComputeMwaPruning(*tree, q, &mwa, &prune_stats);
        if (!st.ok()) std::abort();
      }
    });
    double n = static_cast<double>(base.size());
    cpu.AddRow({std::to_string(k), Table::Num(enum_ms / n),
                Table::Num(prune_ms / n)});
    na.AddRow({std::to_string(k),
               Table::Num(enum_stats.NodeAccesses() / n, 1),
               Table::Num(prune_stats.NodeAccesses() / n, 1)});
  }
  cpu.Print();
  na.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
