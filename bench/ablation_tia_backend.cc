// Ablation: the TIA backend — the multiversion B-tree the paper uses vs a
// plain B+-tree (the aRB-tree-style alternative from the related work).
// For equi-length epochs both are correct (results verified identical in
// tests); the comparison here is page accesses and CPU per query, plus the
// build-side write amplification.
#include "bench/bench_common.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  std::vector<KnntaQuery> queries = PaperQueries(bd, QueriesFromEnv());
  Table table("Ablation TIA backend " + bd.name,
              {"backend", "node_accesses", "tia_reads", "cpu_ms",
               "build_ms", "tia_pages"});
  for (TiaBackend backend : {TiaBackend::kMvbt, TiaBackend::kBpTree}) {
    TarTreeOptions opt;
    opt.strategy = GroupingStrategy::kIntegral3D;
    opt.grid = bd.grid;
    opt.space = bd.data.bounds;
    opt.tia_backend = backend;
    auto tree = std::make_unique<TarTree>(opt);
    std::int64_t max_total = 0;
    for (PoiId id : bd.effective) {
      max_total = std::max(max_total, bd.counts.Total(id));
    }
    tree->SeedMaxTotal(max_total);
    double build_ms = MeasureMs([&] {
      for (PoiId id : bd.effective) {
        if (!tree->InsertPoi(bd.data.pois[id], bd.counts.counts[id]).ok()) {
          std::abort();
        }
      }
    });

    AccessStats stats;
    std::vector<KnntaResult> results;
    double ms = MeasureMs([&] {
      for (const KnntaQuery& q : queries) {
        if (!tree->Query(q, &results, &stats).ok()) std::abort();
      }
    });
    double n = static_cast<double>(queries.size());
    table.AddRow({ToString(backend),
                  Table::Num(stats.NodeAccesses() / n, 1),
                  Table::Num(stats.tia_page_reads / n, 1),
                  Table::Num(ms / n), Table::Num(build_ms, 0),
                  std::to_string(tree->tia_buffer_pool()->file()
                                     ->num_pages())});
  }
  table.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
