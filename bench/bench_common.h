// Shared scaffolding for the figure/table reproduction benches: dataset
// preparation (synthetic presets or a real SNAP check-in file), index
// construction for each grouping strategy, timing and table printing.
//
// Environment knobs:
//   TAR_BENCH_SCALE    dataset scale factor (default 0.03; 1.0 = paper size)
//   TAR_BENCH_QUERIES  queries per measurement point (default 200)
//   TAR_GOWALLA_FILE   path to a SNAP-format check-in file; when set, the
//                      GW dataset is loaded from it instead of synthesized
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/scan_baseline.h"
#include "core/tar_tree.h"
#include "data/generator.h"
#include "data/workload.h"

namespace tar::bench {

double ScaleFromEnv(double def = 0.08);
std::size_t QueriesFromEnv(std::size_t def = 200);

/// \brief A prepared data set: check-ins bucketed into epochs, effective
/// POIs selected by the per-data-set threshold.
struct BenchData {
  std::string name;
  Dataset data;
  EpochGrid grid;
  EpochCounts counts;
  std::vector<PoiId> effective;
  std::int64_t effective_threshold = 0;
};

/// Generates (or loads) and buckets one data set. `epoch_days` defaults to
/// the paper's 7-day epochs.
BenchData Prepare(const GeneratorConfig& config, int epoch_days = 7);

/// GW / GS bench presets: Table 4 configs at the bench scale, with the
/// power-law tail boosted so a few thousand POIs clear the effective-POI
/// thresholds at laptop scale (documented in EXPERIMENTS.md). GW honours
/// TAR_GOWALLA_FILE.
BenchData PrepareGw(int epoch_days = 7);
BenchData PrepareGs(int epoch_days = 7);

/// Builds a TAR-tree over the effective POIs with full histories.
std::unique_ptr<TarTree> BuildTree(const BenchData& bd,
                                   GroupingStrategy strategy,
                                   std::size_t node_size_bytes = 1024,
                                   std::size_t tia_buffer_slots = 10);

/// Builds the sequential-scan baseline over the same POIs.
std::unique_ptr<ScanBaseline> BuildScan(const BenchData& bd);

/// Paper workload: `n` queries, points sampled from the POIs, interval
/// lengths 2^0..2^9 days, k = 10, alpha0 = 0.3 (override after the call).
std::vector<KnntaQuery> PaperQueries(const BenchData& bd, std::size_t n,
                                     std::uint64_t seed = 7);

/// Re-buckets a prefix of the check-in stream: the LBSN as of
/// `fraction` of the observed period (Figure 8's growth snapshots).
BenchData PrepareSnapshot(const BenchData& bd, double fraction);

/// The four approaches of Section 8.2 built over one data set.
struct ApproachSet {
  std::unique_ptr<TarTree> ind_agg;
  std::unique_ptr<TarTree> ind_spa;
  std::unique_ptr<TarTree> tar;
  std::unique_ptr<ScanBaseline> scan;
};

ApproachSet BuildAll(const BenchData& bd, std::size_t node_size_bytes = 1024);

/// Mean per-query cost of one approach over a workload.
struct ApproachCost {
  double cpu_ms = 0.0;
  double node_accesses = 0.0;
};

ApproachCost RunQueries(const TarTree& tree,
                        const std::vector<KnntaQuery>& queries);
ApproachCost RunScan(const ScanBaseline& scan,
                     const std::vector<KnntaQuery>& queries);

/// Wall-clock milliseconds of `fn`.
double MeasureMs(const std::function<void()>& fn);

/// \brief Fixed-width results table writer (stdout + CSV under
/// bench_results/).
class Table {
 public:
  Table(const std::string& title, const std::vector<std::string>& columns);
  void AddRow(const std::vector<std::string>& cells);
  /// Prints the table and writes bench_results/<slug>.csv.
  void Print() const;

  static std::string Num(double v, int precision = 3);

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tar::bench
