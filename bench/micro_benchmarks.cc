// Micro-benchmarks (google-benchmark) for the core operations: MVBT
// insert/lookup/scan, TIA append/aggregate, TAR-tree insert and kNNTA
// query per grouping strategy.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "common/random.h"
#include "temporal/mvbt.h"
#include "temporal/tia.h"

namespace tar {
namespace {

void BM_MvbtInsert(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    PageFile file(1024);
    BufferPool pool(&file, 10);
    mvbt::Mvbt tree(&file, &pool, 1);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          tree.Insert(i / 8, (i * 2654435761u) % 1000000, i));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MvbtInsert)->Arg(1000)->Arg(10000);

void BM_MvbtLookup(benchmark::State& state) {
  PageFile file(1024);
  BufferPool pool(&file, 10);
  mvbt::Mvbt tree(&file, &pool, 1);
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    (void)tree.Insert(i / 8, (i * 2654435761u) % 1000000, i);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(tree.last_version(), (i++ * 2654435761u) % 1000000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MvbtLookup)->Arg(10000);

void BM_TiaAggregate(benchmark::State& state) {
  PageFile file(1024);
  BufferPool pool(&file, 10);
  Tia tia(&file, &pool, 1);
  const std::int64_t len = 7 * kSecondsPerDay;
  for (std::int64_t e = 0; e < state.range(0); ++e) {
    (void)tia.Append({e * len, (e + 1) * len - 1}, 1 + e % 9);
  }
  Rng rng(3);
  for (auto _ : state) {
    std::int64_t a = rng.UniformInt(0, state.range(0) - 1);
    std::int64_t b = rng.UniformInt(a, state.range(0) - 1);
    benchmark::DoNotOptimize(tia.Aggregate({a * len, (b + 1) * len - 1}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TiaAggregate)->Arg(64)->Arg(512);

void BM_TarTreeInsert(benchmark::State& state) {
  Rng rng(7);
  const int epochs = 40;
  for (auto _ : state) {
    state.PauseTiming();
    TarTreeOptions opt;
    opt.grid = EpochGrid(0, 7 * kSecondsPerDay);
    opt.space =
        Box2::Union(Box2::FromPoint({0, 0}), Box2::FromPoint({100, 100}));
    TarTree tree(opt);
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      std::vector<std::int32_t> hist(epochs, 0);
      hist[i % epochs] = 1 + i % 13;
      (void)tree.InsertPoi(
          {static_cast<PoiId>(i),
           {rng.Uniform(0, 100), rng.Uniform(0, 100)}},
          hist);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TarTreeInsert)->Arg(1000);

void QueryBenchmark(benchmark::State& state, GroupingStrategy strategy) {
  using namespace tar::bench;
  GeneratorConfig cfg = GwConfig(0.005, /*seed=*/5);
  cfg.tail_fraction = 0.08;
  BenchData bd = Prepare(cfg);
  auto tree = BuildTree(bd, strategy);
  std::vector<KnntaQuery> queries = PaperQueries(bd, 64);
  std::vector<KnntaResult> results;
  std::size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree->Query(queries[qi++ % queries.size()], &results));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_QueryTarTree(benchmark::State& state) {
  QueryBenchmark(state, GroupingStrategy::kIntegral3D);
}
void BM_QueryIndSpa(benchmark::State& state) {
  QueryBenchmark(state, GroupingStrategy::kSpatial);
}
void BM_QueryIndAgg(benchmark::State& state) {
  QueryBenchmark(state, GroupingStrategy::kAggregate);
}
BENCHMARK(BM_QueryTarTree);
BENCHMARK(BM_QueryIndSpa);
BENCHMARK(BM_QueryIndAgg);

}  // namespace
}  // namespace tar

BENCHMARK_MAIN();
