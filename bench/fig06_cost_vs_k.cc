// Figure 6: validation of the cost analysis by varying k — measured vs
// estimated f(pk) and leaf node accesses on GW and GS.
//
// The model is parameterized by the power-law fit of the aggregates over
// the reference interval; queries here use the full history interval so a
// single fit describes every query (see EXPERIMENTS.md).
#include <cstdio>

#include "bench/bench_common.h"
#include "common/random.h"
#include "core/cost_model.h"

using namespace tar;
using namespace tar::bench;

namespace {

void RunDataset(const BenchData& bd) {
  auto tree = BuildTree(bd, GroupingStrategy::kIntegral3D);

  std::vector<std::int64_t> aggs;
  for (PoiId id : bd.effective) aggs.push_back(bd.counts.Total(id));
  CostModelParams params = FitCostModel(aggs, tree->capacity());
  CostModel model(params);
  std::printf("%s: N=%zu beta=%.2f xmin=%lld xmax=%lld capacity=%zu\n",
              bd.name.c_str(), params.num_pois, params.beta,
              static_cast<long long>(params.xmin),
              static_cast<long long>(params.xmax), params.node_capacity);

  Rng rng(31);
  std::size_t num_queries = QueriesFromEnv();
  const double alpha0 = 0.3;

  Table table("Figure 6 cost analysis vs k " + bd.name,
              {"k", "f(pk)_measured", "f(pk)_estimated", "leafNA_measured",
               "leafNA_estimated"});
  for (std::size_t k : {1u, 5u, 10u, 50u, 100u}) {
    AccessStats stats;
    double fpk_sum = 0.0;
    std::size_t counted = 0;
    for (std::size_t qi = 0; qi < num_queries; ++qi) {
      const Poi& p = bd.data.pois[static_cast<std::size_t>(
          rng.UniformInt(0, (std::int64_t)bd.data.pois.size() - 1))];
      KnntaQuery q{p.pos, {0, bd.data.t_end}, k, alpha0};
      std::vector<KnntaResult> results;
      Status st = tree->Query(q, &results, &stats);
      if (!st.ok() || results.empty()) continue;
      fpk_sum += results.back().score;
      ++counted;
    }
    double measured_fpk = counted > 0 ? fpk_sum / counted : 0.0;
    double measured_na =
        static_cast<double>(stats.rtree_leaf_reads) / num_queries;
    table.AddRow({std::to_string(k), Table::Num(measured_fpk),
                  Table::Num(model.EstimateFpk(alpha0, k)),
                  Table::Num(measured_na, 1),
                  Table::Num(model.EstimateNodeAccesses(alpha0, k), 1)});
  }
  table.Print();
}

}  // namespace

int main() {
  RunDataset(PrepareGw());
  RunDataset(PrepareGs());
  return 0;
}
